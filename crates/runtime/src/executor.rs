//! The graph interpreter: executes a bound computation graph with real
//! numerics over planned arena memory.
//!
//! This is the paper's execution pipeline end to end: extract activation
//! lifetimes from the topologically-sorted graph, let the
//! sequence-length-aware allocator assign `(chunk, offset)` to every
//! intermediate, then run the operators in order, each reading its inputs
//! and writing its output directly inside the shared chunks. Tensors whose
//! lifetimes do not overlap really do share bytes — the arena enforces at
//! runtime that no operator's output aliases its inputs, so a planner bug
//! becomes a panic, not a silent corruption.

use std::collections::HashMap;
use std::sync::Arc;

use tt_alloc::turbo::PlanStats;
use tt_alloc::TurboAllocator;
use tt_graph::{lifetime::activation_lifetimes, Graph, Node, OpKind, TensorClass, TensorId};
use tt_kernels as k;
use tt_model::bound::{BoundGraph, InputBinding};
use tt_model::weights::WeightStore;
use tt_telemetry::{AttrValue, Counter, Histogram, Registry, SpanContext, Stopwatch, Tracer};
use tt_tensor::storage::{Arena, Region};
use tt_tensor::{batched_sgemm, sgemm, sgemm_q8, GemmSpec, Q8Matrix, Tensor, Trans};

/// Every operator class the executor dispatches, in a fixed order. The
/// per-op time-share metrics (paper Table 2's GEMM / non-GEMM split) key
/// off these names.
pub const OP_NAMES: [&str; 15] = [
    "matmul",
    "add_bias",
    "gelu",
    "add_bias_gelu",
    "split_heads",
    "add_bias_split_heads",
    "merge_heads",
    "scale",
    "mask",
    "softmax",
    "scale_mask_softmax",
    "residual",
    "layer_norm",
    "add_bias_residual_layer_norm",
    "embedding",
];

/// Index of an op kind into [`OP_NAMES`].
pub fn op_index(kind: &OpKind) -> usize {
    match kind {
        OpKind::MatMul { .. } => 0,
        OpKind::AddBias => 1,
        OpKind::Gelu => 2,
        OpKind::AddBiasGelu => 3,
        OpKind::SplitHeads { .. } => 4,
        OpKind::AddBiasSplitHeads { .. } => 5,
        OpKind::MergeHeads => 6,
        OpKind::Scale { .. } => 7,
        OpKind::Mask => 8,
        OpKind::Softmax => 9,
        OpKind::ScaleMaskSoftmax { .. } => 10,
        OpKind::Residual => 11,
        OpKind::LayerNorm { .. } => 12,
        OpKind::AddBiasResidualLayerNorm { .. } => 13,
        OpKind::Embedding => 14,
    }
}

/// Per-op-kind wall-clock histograms, mirroring the paper's Table 2
/// breakdown of where inference time goes. Handles are resolved once at
/// registration; the hot path pays one `Instant` read plus two relaxed
/// atomic adds per node.
#[derive(Debug, Clone)]
pub struct ExecutorMetrics {
    op_ns: Vec<Arc<Histogram>>,
    gemm_mflops: Arc<Histogram>,
    gemm_flops_total: Arc<Counter>,
    fused_ops_total: Arc<Counter>,
}

impl ExecutorMetrics {
    /// Register one `executor_op_nanoseconds{op=...}` histogram per
    /// operator class in `registry`, plus the GEMM throughput pair:
    /// `executor_gemm_mflops` (achieved MFLOP/s per MatMul node — the
    /// utilization the paper's Table 2 GEMM-dominance argument rests on)
    /// and `executor_gemm_flops_total`.
    pub fn register(registry: &Registry) -> Self {
        let op_ns = OP_NAMES
            .iter()
            .map(|name| {
                registry.histogram(
                    "executor_op_nanoseconds",
                    "Wall-clock nanoseconds per executed operator, by kind",
                    &[("op", name)],
                )
            })
            .collect();
        let gemm_mflops = registry.histogram(
            "executor_gemm_mflops",
            "Achieved MFLOP/s per executed MatMul node (2mnk / wall time)",
            &[],
        );
        let gemm_flops_total = registry.counter(
            "executor_gemm_flops_total",
            "Total floating point operations issued through MatMul nodes",
            &[],
        );
        let fused_ops_total = registry.counter(
            "executor_fused_ops_total",
            "Fused kernels (bias+GELU, bias+residual+LN, scale+mask+softmax, \
             bias+split-heads) executed in place of their unfused chains",
            &[],
        );
        ExecutorMetrics { op_ns, gemm_mflops, gemm_flops_total, fused_ops_total }
    }

    #[inline]
    fn observe(&self, kind: &OpKind, nanos: u64) {
        self.op_ns[op_index(kind)].record(nanos);
        if kind.is_fused() {
            self.fused_ops_total.inc();
        }
    }

    #[inline]
    fn observe_gemm(&self, flops: u64, nanos: u64) {
        self.gemm_flops_total.add(flops);
        // flops/ns = GFLOP/s; ×1000 for MFLOP/s resolution in the log₂
        // histogram buckets.
        self.gemm_mflops.record(flops.saturating_mul(1000) / nanos.max(1));
    }
}

/// Flops of one graph node if it is a MatMul (2·batch·m·n·k), mirroring the
/// shape derivation in the executor's dispatch step; `None` for every other op.
pub fn matmul_flops(graph: &Graph, node: &Node) -> Option<u64> {
    let OpKind::MatMul { trans_b, .. } = &node.kind else {
        return None;
    };
    let a = &graph.tensors[node.inputs[0]].shape;
    let b = &graph.tensors[node.inputs[1]].shape;
    let (batch, m, k, n) = if b.len() == 2 {
        (
            1,
            a[..a.len() - 1].iter().product::<usize>(),
            a[a.len() - 1],
            if *trans_b { b[0] } else { b[1] },
        )
    } else {
        (a[0] * a[1], a[2], a[3], if *trans_b { b[2] } else { b[3] })
    };
    Some(2 * batch as u64 * m as u64 * k as u64 * n as u64)
}

/// Tracing hook for one execution: the collector plus the parent span
/// contexts to record under. A batch can carry several sampled requests,
/// so the allocator-plan and per-op spans are recorded once per parent —
/// each request's trace tells its own complete story.
pub type TraceHook<'a> = (&'a Tracer, &'a [SpanContext]);

/// Result of one executed inference.
#[derive(Debug)]
pub struct Execution {
    /// The graph's output tensor.
    pub output: Tensor,
    /// Allocator statistics of this inference's plan.
    pub plan_stats: PlanStats,
    /// Activation bytes the plan had to cover (sum over live tensors).
    pub activation_bytes: usize,
}

/// Execute a bound graph. `inputs` supplies one tensor per input role the
/// graph declares. The allocator and arena persist across calls — that is
/// the chunk-cache the paper's allocator is built around.
pub fn execute(
    bound: &BoundGraph,
    store: &WeightStore,
    inputs: &[(InputBinding, &Tensor)],
    allocator: &mut TurboAllocator,
    arena: &mut Arena,
) -> Execution {
    execute_with(bound, store, inputs, allocator, arena, None)
}

/// [`execute`], optionally timing every operator into per-kind histograms.
pub fn execute_with(
    bound: &BoundGraph,
    store: &WeightStore,
    inputs: &[(InputBinding, &Tensor)],
    allocator: &mut TurboAllocator,
    arena: &mut Arena,
    metrics: Option<&ExecutorMetrics>,
) -> Execution {
    execute_traced(bound, store, inputs, allocator, arena, metrics, None, None)
}

/// [`execute_with`], additionally recording request-scoped spans: one
/// `alloc_plan` span (chunks touched, bytes reused) and one span per
/// executed operator (shape; achieved GFLOP/s for MatMuls; modeled
/// `energy_uj` when per-node joules are supplied) under every parent
/// context in the hook. `energies` is indexed by node id, as produced by
/// [`crate::cost::node_energies`].
#[allow(clippy::too_many_arguments)]
pub fn execute_traced(
    bound: &BoundGraph,
    store: &WeightStore,
    inputs: &[(InputBinding, &Tensor)],
    allocator: &mut TurboAllocator,
    arena: &mut Arena,
    metrics: Option<&ExecutorMetrics>,
    trace: Option<TraceHook<'_>>,
    energies: Option<&[f64]>,
) -> Execution {
    let graph = &bound.graph;
    let (usages, order) = activation_lifetimes(graph);
    let activation_bytes: usize = usages.iter().map(|u| u.size).sum();
    let plan_start = trace.map(|(t, _)| (t.now_ns(), Stopwatch::start()));
    // Chaos injection point: an unsatisfiable allocation plan (device
    // memory exhausted, pathological fragmentation). Panics here unwind to
    // the serving loop's catch_unwind — one dropped batch, never a dead
    // engine.
    tt_chaos::alloc_plan_fail();
    let plan = allocator.plan(&usages);
    if let (Some((tracer, parents)), Some((start_ns, watch))) = (trace, plan_start) {
        let dur_ns = watch.elapsed_nanos();
        let stats = allocator.last_stats();
        for ctx in parents {
            tracer.record_span(
                ctx.trace,
                Some(ctx.span),
                "alloc_plan",
                start_ns,
                dur_ns,
                vec![
                    ("chunks", AttrValue::Int(plan.chunk_sizes.len() as i64)),
                    ("new_chunks", AttrValue::Int(stats.new_chunks as i64)),
                    ("new_bytes", AttrValue::Int(stats.new_bytes as i64)),
                    (
                        "reused_bytes",
                        AttrValue::Int(stats.footprint.saturating_sub(stats.new_bytes) as i64),
                    ),
                    ("footprint_bytes", AttrValue::Int(stats.footprint as i64)),
                ],
            );
        }
    }
    tt_alloc::validate_plan(&usages, &plan).expect("allocator produced an unsafe plan");

    // Materialize chunks (bytes → f32 elements; all sizes are 4-aligned).
    for (i, &size) in plan.chunk_sizes.iter().enumerate() {
        debug_assert_eq!(size % 4, 0);
        arena.ensure_chunk(i, size / 4);
    }
    arena.truncate_chunks(plan.chunk_sizes.len().max(1));

    let region_of: HashMap<TensorId, Region> = plan
        .assignments
        .iter()
        .map(|a| {
            debug_assert_eq!(a.offset % 4, 0);
            (a.tensor, Region::new(a.chunk, a.offset / 4, a.size / 4))
        })
        .collect();

    let input_of = |role: InputBinding| -> &Tensor {
        inputs
            .iter()
            .find(|(r, _)| *r == role)
            .map(|(_, t)| *t)
            .unwrap_or_else(|| panic!("missing input {role:?}"))
    };

    // The single output tensor gets its own buffer.
    let out_info = &graph.tensors[bound.output];
    let mut output_buf = vec![0.0f32; out_info.elements()];

    for &node_id in &order {
        let node = &graph.nodes[node_id];

        // Classify each input: external slice or arena region.
        enum Src<'s> {
            Ext(&'s [f32]),
            Arena(Region),
        }
        let srcs: Vec<Src<'_>> = node
            .inputs
            .iter()
            .map(|&t| match graph.tensors[t].class {
                TensorClass::Weight => {
                    let w = bound.weight_index(t).unwrap_or_else(|| {
                        panic!("weight tensor {} unbound", graph.tensors[t].name)
                    });
                    Src::Ext(store.get(w).as_slice())
                }
                TensorClass::Input => {
                    let role = bound.input_role(t).unwrap_or_else(|| {
                        panic!("input tensor {} unbound", graph.tensors[t].name)
                    });
                    Src::Ext(input_of(role).as_slice())
                }
                TensorClass::Activation => Src::Arena(region_of[&t]),
                TensorClass::Output => {
                    panic!("output tensor {} used as an input", graph.tensors[t].name)
                }
            })
            .collect();

        // Chaos injection points: a kernel panic (bad launch, device-side
        // assert) or an op running far slower than its cost-table estimate.
        tt_chaos::executor_op_panic();
        if let Some(delay) = tt_chaos::op_slowdown() {
            std::thread::sleep(delay);
        }

        // int8 sidecar lookup: a MatMul whose second operand is a bound
        // weight may run through the quantized kernel (dispatch checks the
        // layout actually matches the node's transpose flag).
        let quant = match &node.kind {
            OpKind::MatMul { .. } if graph.tensors[node.inputs[1]].class == TensorClass::Weight => {
                bound.weight_index(node.inputs[1]).and_then(|w| store.quant(w))
            }
            _ => None,
        };

        let op_start_ns = trace.map(|(t, _)| t.now_ns());
        let watch = (metrics.is_some() || trace.is_some()).then(Stopwatch::start);
        if node.output == bound.output {
            // Output goes to the dedicated buffer; arena is read-only here.
            let ins: Vec<&[f32]> = srcs
                .iter()
                .map(|s| match s {
                    Src::Ext(x) => *x,
                    Src::Arena(r) => arena.slice(*r),
                })
                .collect();
            dispatch(graph, node, &ins, quant, &mut output_buf);
        } else {
            let out_region = region_of[&node.output];
            let regions: Vec<Region> = srcs
                .iter()
                .filter_map(|s| match s {
                    Src::Arena(r) => Some(*r),
                    Src::Ext(_) => None,
                })
                .collect();
            let (arena_ins, out) = arena.io(&regions, out_region);
            let mut it = arena_ins.into_iter();
            let ins: Vec<&[f32]> = srcs
                .iter()
                .map(|s| match s {
                    Src::Ext(x) => *x,
                    Src::Arena(_) => it.next().expect("one arena view per region"),
                })
                .collect();
            dispatch(graph, node, &ins, quant, out);
        }
        if let Some(w) = watch {
            let nanos = w.elapsed_nanos();
            let flops = matmul_flops(graph, node);
            if let Some(m) = metrics {
                m.observe(&node.kind, nanos);
                if let Some(flops) = flops {
                    m.observe_gemm(flops, nanos);
                }
            }
            if let (Some((tracer, parents)), Some(start_ns)) = (trace, op_start_ns) {
                let shape = graph.tensors[node.output]
                    .shape
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("x");
                for ctx in parents {
                    let mut attrs = vec![("shape", AttrValue::Str(shape.clone()))];
                    if let Some(flops) = flops {
                        // flops per nanosecond is numerically GFLOP/s.
                        attrs
                            .push(("gflops", AttrValue::Float(flops as f64 / nanos.max(1) as f64)));
                    }
                    if let Some(joules) = energies.and_then(|e| e.get(node_id)) {
                        attrs.push(("energy_uj", AttrValue::Int((joules * 1e6).round() as i64)));
                    }
                    tracer.record_span(
                        ctx.trace,
                        Some(ctx.span),
                        OP_NAMES[op_index(&node.kind)],
                        start_ns,
                        nanos,
                        attrs,
                    );
                }
            }
        }
    }

    let output = Tensor::from_vec(out_info.shape.clone(), output_buf)
        .expect("output buffer sized from the shape");
    Execution { output, plan_stats: allocator.last_stats(), activation_bytes }
}

/// Execute one operator: `ins` in the node's input order, `out` the
/// preallocated output region. `quant` is the int8 sidecar of a MatMul's
/// weight operand, when one exists.
fn dispatch(graph: &Graph, node: &Node, ins: &[&[f32]], quant: Option<&Q8Matrix>, out: &mut [f32]) {
    let shape_of = |i: usize| -> &[usize] { &graph.tensors[node.inputs[i]].shape };
    let out_shape: &[usize] = &graph.tensors[node.output].shape;

    match &node.kind {
        OpKind::MatMul { trans_b, alpha } => {
            let a = shape_of(0);
            let b = shape_of(1);
            if b.len() == 2 {
                // 2-D weight: `[k, n]`, or `[n, k]` under trans_b (the
                // tied-embedding lm head layout).
                let m: usize = a[..a.len() - 1].iter().product();
                let kk = a[a.len() - 1];
                let (tb, n) = if *trans_b { (Trans::Yes, b[0]) } else { (Trans::No, b[1]) };
                if let Some(q) = quant {
                    if q.trans() == tb && q.k == kk && q.n == n {
                        sgemm_q8(m, *alpha, ins[0], q, out);
                        return;
                    }
                }
                let spec = GemmSpec { m, k: kk, n, ta: Trans::No, tb, alpha: *alpha, beta: 0.0 };
                sgemm(spec, ins[0], ins[1], out);
            } else {
                let batch = a[0] * a[1];
                let (m, kk) = (a[2], a[3]);
                let (tb, n) = if *trans_b { (Trans::Yes, b[2]) } else { (Trans::No, b[3]) };
                let spec = GemmSpec { m, k: kk, n, ta: Trans::No, tb, alpha: *alpha, beta: 0.0 };
                batched_sgemm(batch, spec, ins[0], ins[1], out);
            }
        }
        OpKind::AddBias => {
            let cols = *out_shape.last().expect("rank >= 1");
            out.copy_from_slice(ins[0]);
            k::add_bias(out.len() / cols, cols, out, ins[1]);
        }
        OpKind::Gelu => {
            out.copy_from_slice(ins[0]);
            k::gelu(out);
        }
        OpKind::AddBiasGelu => {
            let cols = *out_shape.last().expect("rank >= 1");
            out.copy_from_slice(ins[0]);
            k::add_bias_gelu(out.len() / cols, cols, out, ins[1]);
        }
        OpKind::SplitHeads { heads } => {
            let (b, s) = (shape_of(0)[0], shape_of(0)[1]);
            let d = out_shape[3];
            k::split_heads(b, s, *heads, d, ins[0], out);
        }
        OpKind::AddBiasSplitHeads { heads } => {
            let (b, s) = (shape_of(0)[0], shape_of(0)[1]);
            let d = out_shape[3];
            k::add_bias_split_heads(b, s, *heads, d, ins[0], ins[1], out);
        }
        OpKind::MergeHeads => {
            let src = shape_of(0); // [b, h, s, d]
            k::merge_heads(src[0], src[2], src[1], src[3], ins[0], out);
        }
        OpKind::Scale { alpha } => {
            for (o, &x) in out.iter_mut().zip(ins[0]) {
                *o = x * alpha;
            }
        }
        OpKind::Mask => {
            // scores [b, h, sq, sk] + mask [b, sk].
            let s = shape_of(0);
            let (b, h, sq, sk) = (s[0], s[1], s[2], s[3]);
            for ((row, o_row), i_row) in
                (0..b * h * sq).zip(out.chunks_mut(sk)).zip(ins[0].chunks(sk))
            {
                let bi = row / (h * sq);
                let mrow = &ins[1][bi * sk..(bi + 1) * sk];
                for ((o, &x), &m) in o_row.iter_mut().zip(i_row).zip(mrow) {
                    *o = x + m;
                }
            }
        }
        OpKind::Softmax => {
            let len = *out_shape.last().expect("rank >= 1");
            out.copy_from_slice(ins[0]);
            k::softmax_rows(out.len() / len, len, out);
        }
        OpKind::ScaleMaskSoftmax { scale } => {
            let s = shape_of(0);
            let sk = *s.last().expect("rank >= 1");
            out.copy_from_slice(ins[0]);
            if s.len() == 4 {
                // Attention scores [b, h, sq, sk], mask broadcast per batch.
                k::scale_mask_softmax(s[0], s[1], s[2], sk, *scale, ins.get(1).copied(), out);
            } else {
                // Generic fused scale+softmax over the last dim (a fusion
                // of Scale→Softmax outside the attention pattern).
                assert!(ins.len() == 1, "mask requires [b, h, sq, sk] scores");
                tt_tensor::ops::scale_inplace(out, *scale);
                k::softmax_rows(out.len() / sk.max(1), sk, out);
            }
        }
        OpKind::Residual => {
            out.copy_from_slice(ins[0]);
            k::residual_add(out, ins[1]);
        }
        OpKind::LayerNorm { eps } => {
            let hidden = *out_shape.last().expect("rank >= 1");
            k::layer_norm(out.len() / hidden, hidden, ins[0], ins[1], ins[2], *eps, out);
        }
        OpKind::AddBiasResidualLayerNorm { eps } => {
            let hidden = *out_shape.last().expect("rank >= 1");
            k::add_bias_residual_layer_norm(
                out.len() / hidden,
                hidden,
                ins[0],
                ins[1],
                ins[2],
                ins[3],
                ins[4],
                *eps,
                out,
            );
        }
        OpKind::Embedding => {
            // inputs: ids [b, s] (f32), word table, pos table.
            let ids_shape = shape_of(0);
            let (b, s) = (ids_shape[0], ids_shape[1]);
            let hidden = *out_shape.last().expect("rank >= 1");
            let ids: Vec<u32> = ins[0].iter().map(|&v| v as u32).collect();
            k::embed(b, s, hidden, &ids, ins[1], ins[2], None, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_model::albert::{Albert, AlbertConfig};
    use tt_model::bert::{Bert, BertConfig};
    use tt_model::{ids_batch, pad_batch};

    fn run(
        bound: &BoundGraph,
        store: &WeightStore,
        inputs: &[(InputBinding, &Tensor)],
    ) -> Execution {
        let mut alloc = TurboAllocator::default();
        let mut arena = Arena::new();
        execute(bound, store, inputs, &mut alloc, &mut arena)
    }

    #[test]
    fn graph_execution_matches_eager_bert() {
        let cfg = BertConfig::tiny();
        let model = Bert::new_random(&cfg, 21);
        let ids = ids_batch(&[&[3, 1, 4, 1, 5]]);
        let eager = model.forward(&ids, None);
        let bound = model.build_graph(1, 5, false);
        let exec = run(&bound, model.weights(), &[(InputBinding::TokenIds, &ids)]);
        assert!(
            exec.output.approx_eq(&eager, 1e-4),
            "planned-arena execution must match eager: diff {}",
            exec.output.max_abs_diff(&eager).unwrap()
        );
    }

    #[test]
    fn masked_graph_execution_matches_eager() {
        let cfg = BertConfig::tiny();
        let model = Bert::new_random(&cfg, 22);
        let (ids, mask, max_len) = pad_batch(&[&[9, 8, 7], &[1, 2, 3, 4, 5]]);
        let eager = model.forward(&ids, Some(&mask));
        let bound = model.build_graph(2, max_len, true);
        let exec = run(
            &bound,
            model.weights(),
            &[(InputBinding::TokenIds, &ids), (InputBinding::AttentionMask, &mask)],
        );
        assert!(exec.output.approx_eq(&eager, 1e-4));
    }

    #[test]
    fn decomposed_graph_computes_the_same_numbers() {
        // The fusion pass must be semantics-preserving end to end.
        let cfg = BertConfig::tiny();
        let model = Bert::new_random(&cfg, 23);
        let ids = ids_batch(&[&[10, 20, 30, 40]]);
        let bound = model.build_graph(1, 4, false);
        let fused = run(&bound, model.weights(), &[(InputBinding::TokenIds, &ids)]);

        let decomposed_graph = tt_graph::fusion::decompose(&bound.graph);
        let decomposed = bound.rebind(decomposed_graph);
        let unfused = run(&decomposed, model.weights(), &[(InputBinding::TokenIds, &ids)]);
        assert!(
            fused.output.approx_eq(&unfused.output, 1e-4),
            "fused and decomposed graphs must agree: diff {}",
            fused.output.max_abs_diff(&unfused.output).unwrap()
        );
    }

    #[test]
    fn albert_graph_execution_matches_eager() {
        let cfg = AlbertConfig::tiny();
        let model = Albert::new_random(&cfg, 31);
        let ids = ids_batch(&[&[5, 6, 7, 8]]);
        let eager = model.forward(&ids, None);
        let bound = model.build_graph(1, 4, false);
        let exec = run(&bound, model.weights(), &[(InputBinding::TokenIds, &ids)]);
        assert!(exec.output.approx_eq(&eager, 1e-4));
    }

    #[test]
    fn arena_is_reused_across_variable_lengths() {
        let cfg = BertConfig::tiny();
        let model = Bert::new_random(&cfg, 24);
        let mut alloc = TurboAllocator::default();
        let mut arena = Arena::new();

        // Long request warms the chunks; short requests reuse them.
        for &len in &[20usize, 5, 12, 20, 3] {
            let row: Vec<u32> = (0..len as u32).collect();
            let ids = ids_batch(&[&row]);
            let bound = model.build_graph(1, len, false);
            let exec = execute(
                &bound,
                model.weights(),
                &[(InputBinding::TokenIds, &ids)],
                &mut alloc,
                &mut arena,
            );
            assert_eq!(exec.output.shape().dims(), &[1, len, cfg.model_dim()]);
            if len < 20 {
                assert_eq!(
                    exec.plan_stats.new_bytes, 0,
                    "shorter requests must not allocate (len {len})"
                );
            }
        }
    }

    #[test]
    fn plan_footprint_is_far_below_total_activations() {
        // The reuse headline: planned footprint ≪ sum of activation sizes.
        let cfg = BertConfig::tiny();
        let model = Bert::new_random(&cfg, 25);
        let ids = ids_batch(&[&[1u32; 32][..]]);
        let bound = model.build_graph(1, 32, false);
        let mut alloc = TurboAllocator::new(tt_alloc::TurboConfig {
            default_chunk_size: 16 * 1024,
            ..Default::default()
        });
        let mut arena = Arena::new();
        let exec = execute(
            &bound,
            model.weights(),
            &[(InputBinding::TokenIds, &ids)],
            &mut alloc,
            &mut arena,
        );
        assert!(
            exec.plan_stats.footprint * 2 < exec.activation_bytes,
            "lifetime reuse should at least halve the footprint: {} vs {}",
            exec.plan_stats.footprint,
            exec.activation_bytes
        );
    }
}
