//! Generative decode execution: the runtime face of the paged KV cache.
//!
//! The encoder runtimes in this crate are *stateless per request* — plan,
//! execute, discard. Autoregressive decoding inverts that: per-request
//! state (the KV cache) outlives every individual step, and the expensive
//! thing to get wrong is recomputing the prefix each token. This module
//! owns the pairing of a [`Gpt`] with a [`PagedKvArena`] and exposes the
//! two primitives the continuous-batching engine schedules:
//!
//! - [`GenerativeRuntime::prefill`] — run a whole prompt through the
//!   cache, producing the first decode distribution;
//! - [`GenerativeRuntime::decode_step`] — one token of one sequence,
//!   attending over the page-table-resolved prefix in O(prefix) instead
//!   of re-running the model over it in O(prefix · model).
//!
//! Both are timed into `tt-telemetry` histograms (`prefill_us`,
//! `decode_step_us`) when instrumented, and both surface
//! [`KvError::OutOfPages`] as a typed, recoverable error so the scheduler
//! can retire one sequence without stalling the rest of the batch.

use std::sync::Arc;
use std::time::Instant;

use tt_alloc::{KvError, KvSeq, PagedKvArena};
use tt_gpusim::device::DeviceConfig;
use tt_model::gpt::Gpt;
use tt_telemetry::{EnergyMeter, EnergyPhase, Histogram, Registry};

use crate::variants::VariantProfile;

/// Arena sizing for a generative runtime, overridable from the
/// environment (`TT_KV_PAGE_SLOTS`, `TT_KV_PAGES`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeConfig {
    /// Token slots per physical page.
    pub page_slots: usize,
    /// Physical pages in the arena.
    pub num_pages: usize,
}

impl Default for DecodeConfig {
    fn default() -> Self {
        DecodeConfig { page_slots: 16, num_pages: 256 }
    }
}

impl DecodeConfig {
    /// Defaults overridden by `TT_KV_PAGE_SLOTS` / `TT_KV_PAGES` when set
    /// and parseable; invalid values fall back silently (serving must not
    /// fail to boot over a typo'd knob).
    pub fn from_env() -> Self {
        let mut cfg = DecodeConfig::default();
        if let Some(v) = env_usize("TT_KV_PAGE_SLOTS") {
            cfg.page_slots = v.max(1);
        }
        if let Some(v) = env_usize("TT_KV_PAGES") {
            cfg.num_pages = v.max(1);
        }
        cfg
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

#[derive(Debug, Clone)]
struct DecodeMetrics {
    prefill_us: Arc<Histogram>,
    decode_step_us: Arc<Histogram>,
}

/// Energy pricing for generative decode: the modeled device, the variant
/// profile the joules are priced under, and the meter the attribution
/// lands in. Prompt prefills charge [`EnergyPhase::Prefill`]; single-token
/// steps charge [`EnergyPhase::Decode`] — the split the power sampler
/// publishes as per-phase `power_watts` / `energy_joules_total`.
#[derive(Debug, Clone)]
pub struct DecodeEnergyModel {
    /// Device whose energy constants price the work.
    pub device: DeviceConfig,
    /// Variant profile (GEMM efficiency, fusion level) the work runs under.
    pub profile: VariantProfile,
    /// Sink for the attributed microjoules.
    pub meter: Arc<EnergyMeter>,
}

/// A [`Gpt`] bound to a [`PagedKvArena`]: the decode execution engine the
/// continuous-batching scheduler drives. Single-threaded by design, like
/// the paper's serving loop — concurrency lives one layer up, in the
/// engine that interleaves sequences across iterations.
pub struct GenerativeRuntime {
    model: Gpt,
    arena: PagedKvArena,
    metrics: Option<DecodeMetrics>,
    energy: Option<DecodeEnergyModel>,
    last_energy_uj: u64,
}

impl std::fmt::Debug for GenerativeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenerativeRuntime")
            .field("arena", &self.arena)
            .field("instrumented", &self.metrics.is_some())
            .finish()
    }
}

impl GenerativeRuntime {
    /// Bind `model` to a fresh arena shaped by `config`.
    pub fn new(model: Gpt, config: DecodeConfig) -> Self {
        let arena = PagedKvArena::new(model.kv_config(config.page_slots, config.num_pages));
        GenerativeRuntime { model, arena, metrics: None, energy: None, last_energy_uj: 0 }
    }

    /// Register the `kv_*` gauges (via the arena) and the decode timing
    /// histograms in `registry`.
    pub fn instrument(&mut self, registry: &Registry) {
        self.arena.instrument(registry);
        self.metrics = Some(DecodeMetrics {
            prefill_us: registry.histogram(
                "prefill_us",
                "Prompt prefill wall time in microseconds",
                &[],
            ),
            decode_step_us: registry.histogram(
                "decode_step_us",
                "Single-token decode step wall time in microseconds",
                &[],
            ),
        });
    }

    /// Attach an energy model: every subsequent prefill and decode step
    /// attributes its modeled microjoules to `model.meter` under the
    /// matching phase, and [`last_energy_uj`](Self::last_energy_uj) reports
    /// the most recent attribution for span annotation.
    pub fn instrument_energy(&mut self, model: DecodeEnergyModel) {
        self.energy = Some(model);
    }

    /// Modeled microjoules of the most recent [`prefill`](Self::prefill) or
    /// [`decode_step`](Self::decode_step); zero when no energy model is
    /// attached.
    pub fn last_energy_uj(&self) -> u64 {
        self.last_energy_uj
    }

    /// The underlying model.
    pub fn model(&self) -> &Gpt {
        &self.model
    }

    /// The underlying arena (occupancy, page budget, translation).
    pub fn arena(&self) -> &PagedKvArena {
        &self.arena
    }

    /// Whether a prompt of `prompt_len` tokens (plus one decode slot of
    /// headroom) currently fits the page budget.
    pub fn can_admit(&self, prompt_len: usize) -> bool {
        self.arena.can_admit(prompt_len)
    }

    /// Admit a sequence, reserving pages for its prompt.
    pub fn admit(&mut self, prompt_len: usize) -> Result<KvSeq, KvError> {
        self.arena.admit(prompt_len)
    }

    /// Run the whole prompt through the cache; returns the logits after
    /// the last prompt token (the first decode distribution).
    pub fn prefill(&mut self, seq: KvSeq, prompt: &[u32]) -> Result<Vec<f32>, KvError> {
        let start = Instant::now();
        let out = self.model.prefill_paged(&mut self.arena, seq, prompt);
        if let Some(m) = &self.metrics {
            m.prefill_us.record(start.elapsed().as_micros() as u64);
        }
        if out.is_ok() {
            self.charge(EnergyPhase::Prefill, |e, cfg| {
                crate::cost::gpt_prefill_energy(&e.device, &e.profile, cfg, prompt.len()).total_uj()
            });
        }
        out
    }

    /// One decode step: feed `token`, attend over the paged prefix,
    /// return next-token logits.
    pub fn decode_step(&mut self, seq: KvSeq, token: u32) -> Result<Vec<f32>, KvError> {
        let start = Instant::now();
        let out = self.model.step_paged(&mut self.arena, seq, token);
        if let Some(m) = &self.metrics {
            m.decode_step_us.record(start.elapsed().as_micros() as u64);
        }
        if out.is_ok() {
            // Cache length *after* the append: the attention span this step
            // actually paid for.
            let t = self.arena.len_of(seq).unwrap_or(1);
            self.charge(EnergyPhase::Decode, |e, cfg| {
                crate::cost::gpt_step_energy(&e.device, &e.profile, cfg, t, true).total_uj()
            });
        }
        out
    }

    /// Price one unit of work against the attached energy model (no-op
    /// without one) and remember it for span annotation.
    fn charge(
        &mut self,
        phase: EnergyPhase,
        price: impl FnOnce(&DecodeEnergyModel, &tt_model::gpt::GptConfig) -> u64,
    ) {
        if let Some(e) = &self.energy {
            let uj = price(e, &self.model.config);
            e.meter.add(phase, uj);
            self.last_energy_uj = uj;
        }
    }

    /// Release a finished or expired sequence; its pages are free for the
    /// next admission immediately. Returns pages freed.
    pub fn release(&mut self, seq: KvSeq) -> Result<usize, KvError> {
        self.arena.release(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_model::gpt::GptConfig;

    fn runtime() -> GenerativeRuntime {
        let model = Gpt::new_random(&GptConfig::tiny(), 7);
        GenerativeRuntime::new(model, DecodeConfig { page_slots: 4, num_pages: 16 })
    }

    #[test]
    fn prefill_then_decode_produces_logits_and_grows_cache() {
        let mut rt = runtime();
        let seq = rt.admit(3).unwrap();
        let logits = rt.prefill(seq, &[1, 2, 3]).unwrap();
        assert_eq!(logits.len(), rt.model().config.vocab_size);
        let next = tt_tensor::ops::argmax(&logits).unwrap() as u32;
        rt.decode_step(seq, next).unwrap();
        assert_eq!(rt.arena().len_of(seq).unwrap(), 4);
        assert_eq!(rt.release(seq).unwrap(), 1);
    }

    #[test]
    fn instrumented_runtime_times_prefill_and_steps() {
        let registry = Registry::new();
        let mut rt = runtime();
        rt.instrument(&registry);
        let seq = rt.admit(2).unwrap();
        rt.prefill(seq, &[1, 2]).unwrap();
        rt.decode_step(seq, 3).unwrap();
        let snap = registry.snapshot();
        let prefill = snap.find("prefill_us", &[]).unwrap().histogram.clone().unwrap();
        let step = snap.find("decode_step_us", &[]).unwrap().histogram.clone().unwrap();
        assert_eq!(prefill.count(), 1);
        assert_eq!(step.count(), 1);
        assert!(snap.find("kv_pages_in_use", &[]).is_some());
    }

    #[test]
    fn energy_model_attributes_prefill_and_decode_phases() {
        use crate::variants::RuntimeKind;
        let meter = Arc::new(EnergyMeter::default());
        let mut rt = runtime();
        rt.instrument_energy(DecodeEnergyModel {
            device: tt_gpusim::device::DeviceKind::V100.config(),
            profile: RuntimeKind::Turbo.profile(),
            meter: Arc::clone(&meter),
        });
        let seq = rt.admit(3).unwrap();
        rt.prefill(seq, &[1, 2, 3]).unwrap();
        let prefill_uj = meter.phase_uj(EnergyPhase::Prefill);
        assert!(prefill_uj > 0, "prefill must charge the prefill phase");
        assert_eq!(rt.last_energy_uj(), prefill_uj);
        assert_eq!(meter.phase_uj(EnergyPhase::Decode), 0);

        rt.decode_step(seq, 4).unwrap();
        let one_step = meter.phase_uj(EnergyPhase::Decode);
        assert!(one_step > 0, "decode must charge the decode phase");
        assert_eq!(rt.last_energy_uj(), one_step);
        // A longer prefix attends over more cache: later steps cost at
        // least as much as earlier ones.
        rt.decode_step(seq, 5).unwrap();
        assert!(rt.last_energy_uj() >= one_step);
        // A full prompt pass costs more than a single token step.
        assert!(prefill_uj > one_step);
        assert_eq!(meter.busy_uj(), prefill_uj + one_step + rt.last_energy_uj());
    }

    #[test]
    fn decode_config_env_overrides() {
        // Temporarily set, read, restore: tests in this crate run in one
        // process, so scope the mutation tightly.
        std::env::set_var("TT_KV_PAGE_SLOTS", "8");
        std::env::set_var("TT_KV_PAGES", "32");
        let cfg = DecodeConfig::from_env();
        std::env::remove_var("TT_KV_PAGE_SLOTS");
        std::env::remove_var("TT_KV_PAGES");
        assert_eq!(cfg, DecodeConfig { page_slots: 8, num_pages: 32 });
    }
}
