//! Arena storage for planned (offset-assigned) tensor execution.
//!
//! The TurboTransformers runtime does not allocate one buffer per
//! intermediate tensor. Instead the sequence-length-aware allocator
//! (`tt-alloc`) plans, for every activation, a `(chunk, offset, len)` region
//! inside a small list of large chunks; tensors whose lifetimes do not
//! overlap share bytes. [`Arena`] is the owning side of that scheme: it holds
//! the chunks and hands out slices for the regions the planner produced.
//!
//! Safety model: the planner guarantees that the *output* region of an
//! operator never overlaps any of its *input* regions (a tensor is alive from
//! its producing op through its last consuming op, and the allocator never
//! overlaps two simultaneously-live tensors). [`Arena::io`] re-checks that
//! disjointness at runtime and panics if the plan is corrupt, so the unsafe
//! aliasing inside is sound for any plan that passes the check.

/// A planned region inside an [`Arena`]: which chunk, where, how long.
///
/// All quantities are in `f32` elements, not bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// Index of the chunk within the arena.
    pub chunk: usize,
    /// Element offset of the region within the chunk.
    pub offset: usize,
    /// Region length in elements.
    pub len: usize,
}

impl Region {
    /// Create a region.
    pub fn new(chunk: usize, offset: usize, len: usize) -> Self {
        Region { chunk, offset, len }
    }

    /// Whether two regions share at least one element.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.chunk == other.chunk
            && self.offset < other.offset + other.len
            && other.offset < self.offset + self.len
    }
}

/// Owner of the chunked activation memory used by planned execution.
#[derive(Debug, Default)]
pub struct Arena {
    chunks: Vec<Box<[f32]>>,
}

impl Arena {
    /// Create an empty arena.
    pub fn new() -> Self {
        Arena { chunks: Vec::new() }
    }

    /// Make sure chunk `id` exists and holds at least `len` elements.
    ///
    /// Growing an existing chunk reallocates it (contents are zeroed — the
    /// planner never carries live data across a re-plan). Chunk ids must be
    /// dense; asking for id `n` creates empty chunks `0..n` as needed.
    pub fn ensure_chunk(&mut self, id: usize, len: usize) {
        while self.chunks.len() <= id {
            self.chunks.push(Vec::new().into_boxed_slice());
        }
        if self.chunks[id].len() < len {
            self.chunks[id] = vec![0.0f32; len].into_boxed_slice();
        }
    }

    /// Drop chunks with index `>= keep`, returning memory to the OS.
    pub fn truncate_chunks(&mut self, keep: usize) {
        self.chunks.truncate(keep);
    }

    /// Number of chunks currently held.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Total arena capacity in elements.
    pub fn total_elements(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// Immutable view of a region.
    ///
    /// Panics if the region is out of bounds — that means the execution plan
    /// and the arena disagree, which is a logic error, not a recoverable
    /// condition.
    pub fn slice(&self, r: Region) -> &[f32] {
        &self.chunks[r.chunk][r.offset..r.offset + r.len]
    }

    /// Mutable view of a region. Same panic contract as [`Arena::slice`].
    pub fn slice_mut(&mut self, r: Region) -> &mut [f32] {
        &mut self.chunks[r.chunk][r.offset..r.offset + r.len]
    }

    /// Borrow several input regions immutably and one output region mutably,
    /// all at once — the access pattern of a single operator.
    ///
    /// Panics if the output overlaps any input (a corrupt plan) or if any
    /// region is out of bounds. Inputs may overlap each other (two consumers
    /// of the same tensor).
    pub fn io<'a>(
        &'a mut self,
        inputs: &[Region],
        output: Region,
    ) -> (Vec<&'a [f32]>, &'a mut [f32]) {
        for (i, r) in inputs.iter().enumerate() {
            assert!(
                !r.overlaps(&output),
                "corrupt execution plan: input {i} ({r:?}) overlaps output ({output:?})"
            );
        }
        // Bounds-check everything through the safe API first.
        for r in inputs {
            let _ = &self.chunks[r.chunk][r.offset..r.offset + r.len];
        }
        let _ = &self.chunks[output.chunk][output.offset..output.offset + output.len];

        // SAFETY: all regions are in bounds (checked above); the output
        // region is disjoint from every input region (checked above), so one
        // `&mut` plus many `&` never alias. The lifetimes are tied to
        // `&'a mut self`, so no other access to the arena can happen while
        // the borrows live.
        unsafe {
            let base: *mut Box<[f32]> = self.chunks.as_mut_ptr();
            let ins: Vec<&'a [f32]> = inputs
                .iter()
                .map(|r| {
                    let chunk: &[f32] = &*base.add(r.chunk);
                    std::slice::from_raw_parts(chunk.as_ptr().add(r.offset), r.len)
                })
                .collect();
            let out_chunk: &mut Box<[f32]> = &mut *base.add(output.chunk);
            let out = std::slice::from_raw_parts_mut(
                out_chunk.as_mut_ptr().add(output.offset),
                output.len,
            );
            (ins, out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_overlap_rules() {
        let a = Region::new(0, 0, 10);
        let b = Region::new(0, 10, 5);
        let c = Region::new(0, 9, 2);
        let d = Region::new(1, 0, 100);
        assert!(!a.overlaps(&b), "touching regions do not overlap");
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a), "overlap is symmetric");
        assert!(!a.overlaps(&d), "different chunks never overlap");
    }

    #[test]
    fn ensure_chunk_grows_and_creates_dense_ids() {
        let mut arena = Arena::new();
        arena.ensure_chunk(2, 16);
        assert_eq!(arena.num_chunks(), 3);
        assert_eq!(arena.total_elements(), 16);
        arena.ensure_chunk(2, 8); // no shrink
        assert_eq!(arena.total_elements(), 16);
        arena.ensure_chunk(0, 4);
        assert_eq!(arena.total_elements(), 20);
    }

    #[test]
    fn io_hands_out_disjoint_views() {
        let mut arena = Arena::new();
        arena.ensure_chunk(0, 32);
        arena.slice_mut(Region::new(0, 0, 4)).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let (ins, out) = arena.io(&[Region::new(0, 0, 4)], Region::new(0, 16, 4));
        out.copy_from_slice(ins[0]);
        assert_eq!(arena.slice(Region::new(0, 16, 4)), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn io_allows_overlapping_inputs() {
        let mut arena = Arena::new();
        arena.ensure_chunk(0, 32);
        let (ins, _out) =
            arena.io(&[Region::new(0, 0, 8), Region::new(0, 4, 8)], Region::new(0, 16, 4));
        assert_eq!(ins.len(), 2);
    }

    #[test]
    #[should_panic(expected = "corrupt execution plan")]
    fn io_rejects_aliasing_output() {
        let mut arena = Arena::new();
        arena.ensure_chunk(0, 32);
        let _ = arena.io(&[Region::new(0, 0, 8)], Region::new(0, 4, 8));
    }

    #[test]
    fn truncate_releases_chunks() {
        let mut arena = Arena::new();
        arena.ensure_chunk(3, 8);
        arena.truncate_chunks(1);
        assert_eq!(arena.num_chunks(), 1);
    }
}
