//! Weight-only int8 GEMM: per-output-channel scales, f32 activations and
//! accumulation.
//!
//! The decode steps that dominate `/v1/generate` traffic are GEMV-shaped
//! (`m = 1`): every weight byte is read exactly once per token, so they run
//! at memory bandwidth, not FLOP/s. Quantizing the *weights* to int8 —
//! activations stay f32 — cuts that traffic 4× while keeping the accuracy
//! loss tiny and analyzable:
//!
//! - each output channel `j` (a column of `op(W)`) gets its own scale
//!   `s_j = max|W[:,j]| / 127`, so no channel is crushed by another's range;
//! - quantization is round-to-nearest: `|w - s_j·q|  ≤ s_j/2` per weight;
//! - the kernel accumulates `Σ_l a_l · q[l][j]` in f32 and applies `s_j`
//!   once at the end, so the only error is the weight rounding itself, and
//!   the absolute output error is bounded by `s_j/2 · Σ_l |a_l|`
//!   ([`Q8Matrix::error_bound`], pinned by tests).
//!
//! [`Q8Matrix`] is a *sidecar*: models keep their f32 weights and attach a
//! quantized copy per weight matrix, so the quantized path is selectable
//! per-matrix and per-call (`TT_GEMM_INT8` gates it at the model layer).

use crate::gemm::Trans;

/// An int8-quantized weight matrix representing `op(W)` of shape `k × n`.
///
/// Storage follows the f32 operand it shadows: `trans == No` stores
/// `[k, n]` row-major (the layout of linear-layer weights), `trans == Yes`
/// stores `[n, k]` row-major (the layout of a tied-embedding LM head used
/// as `x · Eᵀ`). Scales are always per *logical output channel* `j ∈ 0..n`.
#[derive(Debug, Clone)]
pub struct Q8Matrix {
    /// Contraction dimension of `op(W)`.
    pub k: usize,
    /// Output channels of `op(W)`.
    pub n: usize,
    trans: Trans,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl Q8Matrix {
    /// Quantize `w`, the storage of `op(W)` with the given layout:
    /// `trans == No` → `w` is `[k, n]`; `trans == Yes` → `w` is `[n, k]`.
    pub fn quantize(w: &[f32], k: usize, n: usize, trans: Trans) -> Self {
        assert_eq!(w.len(), k * n, "weight storage has wrong length");
        let mut scales = vec![0.0f32; n];
        match trans {
            Trans::No => {
                for l in 0..k {
                    for (j, s) in scales.iter_mut().enumerate() {
                        *s = s.max(w[l * n + j].abs());
                    }
                }
            }
            Trans::Yes => {
                for (j, s) in scales.iter_mut().enumerate() {
                    for &v in &w[j * k..(j + 1) * k] {
                        *s = s.max(v.abs());
                    }
                }
            }
        }
        for s in scales.iter_mut() {
            *s = if *s > 0.0 { *s / 127.0 } else { 1.0 };
        }
        let mut data = vec![0i8; k * n];
        match trans {
            Trans::No => {
                for l in 0..k {
                    for j in 0..n {
                        data[l * n + j] = quant(w[l * n + j], scales[j]);
                    }
                }
            }
            Trans::Yes => {
                for j in 0..n {
                    for l in 0..k {
                        data[j * k + l] = quant(w[j * k + l], scales[j]);
                    }
                }
            }
        }
        Q8Matrix { k, n, trans, data, scales }
    }

    /// The storage layout this matrix shadows.
    pub fn trans(&self) -> Trans {
        self.trans
    }

    /// Per-output-channel scales (`n` entries).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Bytes held by the quantized data + scales.
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }

    /// Worst-case absolute error of output channel `j` for an activation
    /// row `a`: round-to-nearest loses at most `scale/2` per weight, so the
    /// dot product is off by at most `scale_j/2 · Σ|a_l|`. Tests pin the
    /// kernel against exactly this bound.
    pub fn error_bound(&self, j: usize, a: &[f32]) -> f32 {
        let sum_abs: f32 = a.iter().map(|v| v.abs()).sum();
        0.5 * self.scales[j] * sum_abs
    }
}

fn quant(v: f32, scale: f32) -> i8 {
    (v / scale).round().clamp(-127.0, 127.0) as i8
}

/// `C = alpha · A · op(W)` with `A: m×k` f32 row-major and `W` the int8
/// sidecar (beta = 0 semantics: `C` is overwritten). This is the quantized
/// twin of the thin-GEMV path: `m` is expected to be small (decode steps
/// have `m = 1`), every weight byte is touched once, and accumulation is
/// f32 throughout.
pub fn sgemm_q8(m: usize, alpha: f32, a: &[f32], w: &Q8Matrix, c: &mut [f32]) {
    let (k, n) = (w.k, w.n);
    assert_eq!(a.len(), m * k, "A has wrong length for q8 gemm");
    assert_eq!(c.len(), m * n, "C has wrong length for q8 gemm");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        match w.trans {
            Trans::No => row_axpy(a_row, w, c_row),
            Trans::Yes => row_dot(a_row, w, c_row),
        }
        for (j, cv) in c_row.iter_mut().enumerate() {
            *cv *= alpha * w.scales[j];
        }
    }
}

/// `c[j] = Σ_l a[l] · q[l][j]` over `[k, n]`-stored int8 rows (axpy form).
fn row_axpy(a: &[f32], w: &Q8Matrix, c: &mut [f32]) {
    let n = w.n;
    c.fill(0.0);
    #[cfg(target_arch = "x86_64")]
    if crate::simd::kernel_variant() == crate::simd::KernelVariant::Avx2 {
        for (l, &s) in a.iter().enumerate() {
            if s == 0.0 {
                continue;
            }
            // SAFETY: avx2+fma verified by kernel selection.
            unsafe { axpy_i8_avx2(s, &w.data[l * n..(l + 1) * n], c) };
        }
        return;
    }
    for (l, &s) in a.iter().enumerate() {
        if s == 0.0 {
            continue;
        }
        let row = &w.data[l * n..(l + 1) * n];
        for (cv, &qv) in c.iter_mut().zip(row.iter()) {
            *cv += s * qv as f32;
        }
    }
}

/// `c[j] = dot(a, q_row_j)` over `[n, k]`-stored int8 rows (dot form).
fn row_dot(a: &[f32], w: &Q8Matrix, c: &mut [f32]) {
    let k = w.k;
    #[cfg(target_arch = "x86_64")]
    if crate::simd::kernel_variant() == crate::simd::KernelVariant::Avx2 {
        for (j, cv) in c.iter_mut().enumerate() {
            // SAFETY: avx2+fma verified by kernel selection.
            *cv = unsafe { dot_i8_avx2(a, &w.data[j * k..(j + 1) * k]) };
        }
        return;
    }
    for (j, cv) in c.iter_mut().enumerate() {
        let row = &w.data[j * k..(j + 1) * k];
        let mut acc = 0.0f32;
        for (&av, &qv) in a.iter().zip(row.iter()) {
            acc += av * qv as f32;
        }
        *cv = acc;
    }
}

/// `y += s · widen(q)` — int8 row axpy, 8 lanes per step via
/// sign-extend + convert + FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_i8_avx2(s: f32, q: &[i8], y: &mut [f32]) {
    use core::arch::x86_64::*;
    let n = q.len().min(y.len());
    let sv = _mm256_set1_ps(s);
    let mut j = 0;
    while j + 8 <= n {
        let bytes = _mm_loadl_epi64(q.as_ptr().add(j) as *const __m128i);
        let wide = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
        let yv = _mm256_loadu_ps(y.as_ptr().add(j));
        _mm256_storeu_ps(y.as_mut_ptr().add(j), _mm256_fmadd_ps(sv, wide, yv));
        j += 8;
    }
    while j < n {
        *y.get_unchecked_mut(j) += s * *q.get_unchecked(j) as f32;
        j += 1;
    }
}

/// `Σ a[l] · widen(q[l])` — f32-accumulated int8 dot product.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_i8_avx2(a: &[f32], q: &[i8]) -> f32 {
    use core::arch::x86_64::*;
    let n = a.len().min(q.len());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut l = 0;
    while l + 16 <= n {
        let b0 = _mm_loadl_epi64(q.as_ptr().add(l) as *const __m128i);
        let b1 = _mm_loadl_epi64(q.as_ptr().add(l + 8) as *const __m128i);
        acc0 = _mm256_fmadd_ps(
            _mm256_loadu_ps(a.as_ptr().add(l)),
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b0)),
            acc0,
        );
        acc1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(a.as_ptr().add(l + 8)),
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b1)),
            acc1,
        );
        l += 16;
    }
    if l + 8 <= n {
        let b0 = _mm_loadl_epi64(q.as_ptr().add(l) as *const __m128i);
        acc0 = _mm256_fmadd_ps(
            _mm256_loadu_ps(a.as_ptr().add(l)),
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b0)),
            acc0,
        );
        l += 8;
    }
    let sum = _mm256_add_ps(acc0, acc1);
    let hi = _mm256_extractf128_ps(sum, 1);
    let lo = _mm256_castps256_ps128(sum);
    let qd = _mm_add_ps(lo, hi);
    let d = _mm_add_ps(qd, _mm_movehl_ps(qd, qd));
    let sc = _mm_add_ss(d, _mm_shuffle_ps(d, d, 1));
    let mut total = _mm_cvtss_f32(sc);
    while l < n {
        total += a.get_unchecked(l) * *q.get_unchecked(l) as f32;
        l += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{sgemm_serial, GemmSpec};

    fn pseudo(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn quantized_nn_stays_within_error_bound() {
        for &(m, k, n) in &[(1, 64, 48), (1, 768, 256), (3, 100, 33), (4, 257, 9)] {
            let a = pseudo(m * k, 7);
            let w = pseudo(k * n, 13);
            let q = Q8Matrix::quantize(&w, k, n, Trans::No);
            let mut got = vec![0.0f32; m * n];
            sgemm_q8(m, 1.0, &a, &q, &mut got);
            let mut want = vec![0.0f32; m * n];
            sgemm_serial(GemmSpec::nn(m, k, n), &a, &w, &mut want);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let bound = q.error_bound(j, a_row) + 1e-5;
                    let err = (got[i * n + j] - want[i * n + j]).abs();
                    assert!(err <= bound, "({m},{k},{n}) out[{i},{j}] err {err} > bound {bound}");
                }
            }
        }
    }

    #[test]
    fn quantized_nt_stays_within_error_bound() {
        for &(m, k, n) in &[(1, 64, 200), (1, 96, 1000), (2, 33, 17)] {
            let a = pseudo(m * k, 3);
            let w_t = pseudo(n * k, 11); // stored [n, k]
            let q = Q8Matrix::quantize(&w_t, k, n, Trans::Yes);
            let mut got = vec![0.0f32; m * n];
            sgemm_q8(m, 1.0, &a, &q, &mut got);
            let mut want = vec![0.0f32; m * n];
            sgemm_serial(GemmSpec::nt(m, k, n), &a, &w_t, &mut want);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let bound = q.error_bound(j, a_row) + 1e-5;
                    let err = (got[i * n + j] - want[i * n + j]).abs();
                    assert!(err <= bound, "nt ({m},{k},{n}) out[{i},{j}] err {err} > {bound}");
                }
            }
        }
    }

    #[test]
    fn alpha_scales_the_quantized_product() {
        let (k, n) = (32, 16);
        let a = pseudo(k, 5);
        let w = pseudo(k * n, 9);
        let q = Q8Matrix::quantize(&w, k, n, Trans::No);
        let mut one = vec![0.0f32; n];
        let mut two = vec![0.0f32; n];
        sgemm_q8(1, 1.0, &a, &q, &mut one);
        sgemm_q8(1, 2.0, &a, &q, &mut two);
        for j in 0..n {
            assert!((two[j] - 2.0 * one[j]).abs() < 1e-4 * one[j].abs().max(1.0));
        }
    }

    #[test]
    fn zero_and_constant_columns_roundtrip() {
        // A zero column must not produce NaNs (scale falls back to 1.0)
        // and a constant column is exactly representable.
        let (k, n) = (8, 2);
        let mut w = vec![0.0f32; k * n];
        for l in 0..k {
            w[l * n + 1] = 0.5;
        }
        let q = Q8Matrix::quantize(&w, k, n, Trans::No);
        let a = vec![1.0f32; k];
        let mut out = vec![f32::NAN; n];
        sgemm_q8(1, 1.0, &a, &q, &mut out);
        assert_eq!(out[0], 0.0);
        assert!((out[1] - 0.5 * k as f32).abs() < 1e-5);
    }

    #[test]
    fn sidecar_is_quarter_sized() {
        let (k, n) = (256, 512);
        let w = pseudo(k * n, 21);
        let q = Q8Matrix::quantize(&w, k, n, Trans::No);
        assert!(q.bytes() < k * n * 4 / 3, "int8 sidecar must be ~4x smaller than f32");
    }
}
