//! # tt-tensor — dense f32 tensor substrate
//!
//! A small, fast tensor library purpose-built for transformer inference.
//! It stands in for the GPU device math library (cuBLAS and friends) of the
//! original TurboTransformers: all numerics in this reproduction run on the
//! CPU through this crate, while timing of the GPU is modelled separately by
//! `tt-gpusim`.
//!
//! Design points:
//!
//! - Row-major, contiguous `f32` storage only. Transformer inference never
//!   needs strided views that survive an op boundary; explicit `transpose`
//!   kernels (as on the GPU) keep the memory model simple and fast.
//! - [`gemm::sgemm`] is a cache-blocked, rayon-parallel matrix multiply with
//!   optional transposes and `alpha`/`beta` scaling — the cuBLAS `sgemm`
//!   surface the paper's runtime calls.
//! - Tensors can either own their storage or borrow it from an externally
//!   managed arena (see [`storage`]); the latter is how the
//!   sequence-length-aware allocator of `tt-alloc` hands out chunk space.

pub mod gemm;
pub mod ops;
pub mod q8;
pub mod shape;
pub mod simd;
pub mod storage;
pub mod tensor;

pub use gemm::{batched_sgemm, kernel_path, sgemm, sgemm_serial, GemmSpec, KernelPath, Trans};
pub use q8::{sgemm_q8, Q8Matrix};
pub use shape::Shape;
pub use simd::{kernel_variant, kernel_variant_name, set_kernel_override, KernelVariant};
pub use tensor::Tensor;

/// Crate-wide error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// Which operation detected the mismatch.
        context: &'static str,
        /// The offending shapes, formatted.
        detail: String,
    },
    /// An index was out of bounds for the tensor.
    OutOfBounds {
        /// Which operation detected the bad index.
        context: &'static str,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { context, detail } => {
                write!(f, "shape mismatch in {context}: {detail}")
            }
            TensorError::OutOfBounds { context } => {
                write!(f, "index out of bounds in {context}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
