//! Small element-wise and layout utilities shared by the kernel crate.
//!
//! Anything with transformer-specific semantics (softmax, layernorm, GELU,
//! fused add-bias-transpose, …) lives in `tt-kernels`; this module keeps only
//! the generic building blocks.

/// `dst[i] += src[i]`.
pub fn add_inplace(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add_inplace length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d += s;
    }
}

/// `dst[i] *= s`.
pub fn scale_inplace(dst: &mut [f32], s: f32) {
    for d in dst.iter_mut() {
        *d *= s;
    }
}

/// Out-of-place 2-D transpose: `dst` (cols×rows) = `src` (rows×cols)ᵀ.
pub fn transpose_2d(rows: usize, cols: usize, src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), rows * cols, "transpose src length");
    assert_eq!(dst.len(), rows * cols, "transpose dst length");
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/// Index of the maximum element; ties resolve to the first occurrence.
/// Returns `None` for an empty slice.
pub fn argmax(xs: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in xs.iter().enumerate() {
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Numerically-stable sum via Kahan compensation. Used by test oracles so
/// reference results do not drift on long rows.
pub fn kahan_sum(xs: &[f32]) -> f32 {
    let mut sum = 0.0f32;
    let mut c = 0.0f32;
    for &x in xs {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_scale() {
        let mut d = vec![1.0, 2.0, 3.0];
        add_inplace(&mut d, &[0.5, 0.5, 0.5]);
        assert_eq!(d, vec![1.5, 2.5, 3.5]);
        scale_inplace(&mut d, 2.0);
        assert_eq!(d, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let src: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let mut t = vec![0.0; 12];
        let mut back = vec![0.0; 12];
        transpose_2d(3, 4, &src, &mut t);
        assert_eq!(t[0], 0.0);
        assert_eq!(t[1], 4.0); // column-major walk of src
        transpose_2d(4, 3, &t, &mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn argmax_first_tie_and_empty() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f32::NEG_INFINITY, -1.0]), Some(1));
    }

    #[test]
    fn kahan_beats_naive_on_adversarial_input() {
        // 1 followed by many tiny values that naive f32 summation drops.
        let mut xs = vec![1.0f32];
        xs.extend(std::iter::repeat_n(1e-8f32, 100_000));
        let kahan = kahan_sum(&xs);
        assert!((kahan - (1.0 + 1e-3)).abs() < 1e-6, "kahan={kahan}");
    }
}
