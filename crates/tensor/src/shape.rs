//! Tensor shapes: dimension lists with row-major stride computation.

/// A tensor shape — an ordered list of dimension extents.
///
/// Shapes are small (transformer graphs never exceed 4-D), so a plain
/// `Vec<usize>` is used; the shape is immutable once constructed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Create a shape from a dimension list.
    ///
    /// Zero-sized dimensions are allowed (an empty batch is a legal
    /// intermediate in the serving path when a scheduler flushes early).
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape { dims: dims.into() }
    }

    /// A 0-d (scalar) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `i`.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements.
    ///
    /// The last dimension is contiguous. A zero-rank shape yields an empty
    /// stride list.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.dims.len()];
        let mut acc = 1usize;
        for (s, &d) in strides.iter_mut().zip(self.dims.iter()).rev() {
            *s = acc;
            acc *= d;
        }
        strides
    }

    /// Linear row-major offset of a multi-dimensional index.
    ///
    /// Panics in debug builds if `index` has wrong rank or is out of range;
    /// this is a hot path so release builds elide the checks.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0usize;
        let mut acc = 1usize;
        for (i, (&ix, &d)) in index.iter().zip(self.dims.iter()).enumerate().rev() {
            debug_assert!(ix < d, "index {ix} out of bounds for dim {i} of extent {d}");
            let _ = i;
            off += ix * acc;
            acc *= d;
        }
        off
    }

    /// Interpret this shape as a batch of rows: all leading dimensions are
    /// folded into the batch, the final dimension is the row length.
    ///
    /// This is the canonical view for batch-reduction kernels (Softmax and
    /// LayerNorm reduce over the last dimension). A scalar folds to
    /// `(1, 1)`.
    pub fn as_batch_rows(&self) -> (usize, usize) {
        match self.dims.split_last() {
            Some((&last, lead)) => (lead.iter().product::<usize>().max(1), last.max(1)),
            None => (1, 1),
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_elements_and_rank() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.num_elements(), 24);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.as_batch_rows(), (1, 1));
    }

    #[test]
    fn row_major_strides() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new([2, 3, 4]);
        let strides = s.strides();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let expect = i * strides[0] + j * strides[1] + k * strides[2];
                    assert_eq!(s.offset(&[i, j, k]), expect);
                }
            }
        }
    }

    #[test]
    fn batch_rows_folding() {
        assert_eq!(Shape::new([2, 3, 4]).as_batch_rows(), (6, 4));
        assert_eq!(Shape::new([5]).as_batch_rows(), (1, 5));
        assert_eq!(Shape::new([0, 7]).as_batch_rows(), (1, 7));
    }

    #[test]
    fn zero_dim_num_elements() {
        assert_eq!(Shape::new([0, 7]).num_elements(), 0);
    }

    #[test]
    fn display_formats_like_a_list() {
        assert_eq!(Shape::new([1, 40, 768]).to_string(), "[1, 40, 768]");
    }
}
