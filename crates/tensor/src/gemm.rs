//! Packed-panel, register-blocked single-precision matrix multiply.
//!
//! This is the cuBLAS `sgemm` stand-in of the reproduction: every GEMM in the
//! transformer graph (QKV projections, attention score/context products, FFN
//! layers, output projections) funnels through [`sgemm`] or
//! [`batched_sgemm`]. Per the paper's Table 2, GEMM is 61–87% of BERT
//! inference time, so this file sets the throughput ceiling for every figure
//! and serving bench layered above it.
//!
//! The engine is a BLIS-style blocked loop nest:
//!
//! ```text
//! for jc in N by NC:                 // B macro-panel column block
//!   for pc in K by KC:               // depth panel
//!     pack B[pc..pc+KC, jc..jc+NC]   // → KC×NC panel, NR-wide strips
//!     for ic in M by MC:             // parallel over row blocks of C
//!       pack A[ic..ic+MC, pc..pc+KC] // → MC×KC panel, MR-tall strips
//!       for jr in NC by NR:          // macro-kernel over the panel grid
//!         for ir in MC by MR:
//!           micro-kernel: MR×NR register tile over the shared KC depth
//! ```
//!
//! Packing is the single place that understands the four `Trans` layouts:
//! the micro-kernel always reads two contiguous, zero-padded panels, so
//! partial tiles need no edge variants. Each packed A element is reused NR
//! times and each packed B element MR times straight from registers; the
//! KC×NR B strip stays L1-resident while the MC×KC A panel streams from
//! L2. Parallelism (rayon) splits the row dimension of C across
//! macro-blocks; [`batched_sgemm`] additionally picks between per-head
//! parallelism and intra-GEMM parallelism by problem size.
//!
//! The register tile itself lives in [`crate::simd`] and is dispatched at
//! runtime: an explicit AVX2+FMA 4×16 kernel where the CPU supports it, a
//! portable auto-vectorized 4×8 tile otherwise (`TT_GEMM_KERNEL` forces a
//! variant). The strip width `nr` therefore varies per variant; `MR` is
//! fixed. See [`crate::q8`] for the int8 weight-quantized sibling of the
//! thin-GEMV path.

use rayon::prelude::*;

use crate::simd::{self, Acc, Kernel, NR_MAX};

/// Transpose flag for a GEMM operand, mirroring BLAS conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Full problem description for a GEMM call:
/// `C = alpha * op(A) * op(B) + beta * C` with `op(A): m×k`, `op(B): k×n`.
#[derive(Debug, Clone, Copy)]
pub struct GemmSpec {
    /// Rows of `op(A)` and of `C`.
    pub m: usize,
    /// Inner (contraction) dimension.
    pub k: usize,
    /// Columns of `op(B)` and of `C`.
    pub n: usize,
    /// Transpose flag for `A`.
    pub ta: Trans,
    /// Transpose flag for `B`.
    pub tb: Trans,
    /// Scale applied to the product.
    pub alpha: f32,
    /// Scale applied to the existing contents of `C`.
    pub beta: f32,
}

impl GemmSpec {
    /// A plain `C = A·B` spec.
    pub fn nn(m: usize, k: usize, n: usize) -> Self {
        GemmSpec { m, k, n, ta: Trans::No, tb: Trans::No, alpha: 1.0, beta: 0.0 }
    }

    /// A `C = A·Bᵀ` spec (attention scores: Q × Kᵀ).
    pub fn nt(m: usize, k: usize, n: usize) -> Self {
        GemmSpec { m, k, n, ta: Trans::No, tb: Trans::Yes, alpha: 1.0, beta: 0.0 }
    }

    /// Builder: set `alpha`.
    pub fn with_alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Builder: set `beta`.
    pub fn with_beta(mut self, beta: f32) -> Self {
        self.beta = beta;
        self
    }

    /// Floating point operations performed by this GEMM (2·m·n·k).
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// Rows of the register micro-tile, shared by every kernel variant: the
/// packed A layout is MR-tall strips regardless of dispatch. With the
/// scalar tile's 4×8 accumulator block (8 SSE2 vector registers) there is
/// room left for the A broadcasts and the B row; the AVX2 tile widens the
/// columns instead of the rows ([`crate::simd`]).
pub const MR: usize = 4;

/// Columns of the *scalar* register micro-tile (two 4-wide vectors per C
/// row). The AVX2 tile uses 16 ([`crate::simd::NR_MAX`]); packing width
/// follows the selected kernel at runtime.
pub const NR: usize = 8;

/// Rows of A packed per macro-panel: MC×KC·4B = 128 KiB, sized to stay
/// L2-resident while the macro-kernel sweeps it once per B strip.
const MC: usize = 128;

/// Depth of one packed panel: the KC×NR B strip is 8 KiB (L1-resident),
/// and KC bounds how much of the beta-handling runs per C tile (the first
/// depth panel applies the caller's beta, later panels accumulate).
const KC: usize = 256;

/// Columns of B packed per macro-panel: KC×NC·4B = 512 KiB, the working
/// set shared by every row-block task of one depth panel.
const NC: usize = 512;

/// Below this many flops a GEMM runs single-threaded: one MC row block
/// cannot amortize thread dispatch on shapes this small.
const PAR_MIN_FLOPS: u64 = 1 << 20;

/// At or below this many `op(A)` rows the packed engine loses: packing B
/// copies k·n elements to feed only 2·m·k·n flops, so thin "gemv-shaped"
/// multiplies (decoder single-token steps) use an unpacked row kernel.
const SMALL_M: usize = 4;

/// `C = alpha * op(A) * op(B) + beta * C`, row-major, parallel across row
/// macro-blocks of `C` when the problem is large enough to amortize it.
///
/// Panics if the slice lengths do not match the spec — shape errors here are
/// always runtime-construction bugs, not data-dependent conditions.
pub fn sgemm(spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_shapes(spec, a, b, c);
    run(spec, a, b, c, true);
}

/// Single-threaded [`sgemm`]: same packed engine, no rayon dispatch. Used
/// inside [`batched_sgemm`] tasks (avoids nested parallelism) and exported
/// for deterministic microbenches.
pub fn sgemm_serial(spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_shapes(spec, a, b, c);
    run(spec, a, b, c, false);
}

/// Batched GEMM: `batch` independent multiplies with identical specs, the
/// operands laid out back to back. This is the cuBLAS strided-batched GEMM
/// used for per-head attention products.
///
/// Strategy: many small matrices (the attention regime — dozens to hundreds
/// of `seq×64`-ish heads) parallelize across the batch, one packed serial
/// GEMM per head; few large matrices parallelize inside each GEMM instead,
/// so a batch of 2 big FFN-shaped multiplies still uses every core.
pub fn batched_sgemm(batch: usize, spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32]) {
    let (sa, sb, sc) = (spec.m * spec.k, spec.k * spec.n, spec.m * spec.n);
    assert_eq!(a.len(), batch * sa, "batched A has wrong length");
    assert_eq!(b.len(), batch * sb, "batched B has wrong length");
    assert_eq!(c.len(), batch * sc, "batched C has wrong length");
    if batch == 0 || sc == 0 {
        return;
    }
    let threads = available_threads();
    let per_head = threads > 1 && (batch >= threads || spec.flops() < PAR_MIN_FLOPS);
    if per_head {
        c.par_chunks_mut(sc).enumerate().for_each(|(i, c_i)| {
            run(spec, &a[i * sa..(i + 1) * sa], &b[i * sb..(i + 1) * sb], c_i, false);
        });
    } else {
        for (i, c_i) in c.chunks_mut(sc).enumerate() {
            run(spec, &a[i * sa..(i + 1) * sa], &b[i * sb..(i + 1) * sb], c_i, true);
        }
    }
}

fn check_shapes(spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), spec.m * spec.k, "A has wrong length for {spec:?}");
    assert_eq!(b.len(), spec.k * spec.n, "B has wrong length for {spec:?}");
    assert_eq!(c.len(), spec.m * spec.n, "C has wrong length for {spec:?}");
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Which execution path [`sgemm`] routes a spec to. Exposed so callers and
/// regression tests can assert that a shape class hits the path it was
/// tuned for (decode steps must take [`KernelPath::Gemv`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// `m == 0 || n == 0`: nothing to do.
    Noop,
    /// `k == 0 || alpha == 0`: only `beta · C` is applied.
    ScaleOnly,
    /// `m ≤ 4`: unpacked thin-matrix kernel (axpy/dot over B, no packing
    /// copy) — the single-token decode path.
    Gemv,
    /// The packed-panel register-blocked engine.
    Blocked,
}

/// The path [`sgemm`] will take for `spec`.
pub fn kernel_path(spec: GemmSpec) -> KernelPath {
    if spec.m == 0 || spec.n == 0 {
        KernelPath::Noop
    } else if spec.k == 0 || spec.alpha == 0.0 {
        KernelPath::ScaleOnly
    } else if spec.m <= SMALL_M {
        KernelPath::Gemv
    } else {
        KernelPath::Blocked
    }
}

/// Shape-checked entry: route to the degenerate, thin, or blocked kernel.
fn run(spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32], allow_par: bool) {
    if spec.m == 0 || spec.n == 0 {
        return;
    }
    if spec.k == 0 || spec.alpha == 0.0 {
        scale_c(c, spec.beta);
        return;
    }
    if spec.m <= SMALL_M {
        small_m_kernel(spec, a, b, c);
        return;
    }
    let par = allow_par && spec.flops() >= PAR_MIN_FLOPS && available_threads() > 1;
    blocked(spec, a, b, c, par);
}

/// `C = beta * C` with the BLAS convention that beta = 0 overwrites even
/// NaN/uninitialized contents.
fn scale_c(c: &mut [f32], beta: f32) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }
}

/// Thin-matrix kernel for `m ≤ SMALL_M`: B is streamed exactly once with no
/// packing copy (a packed panel would double the memory traffic of what is
/// essentially a row of gemv calls). Handles all four layouts; A access is
/// strided for `ta = Yes` but A is only m×k elements here.
fn small_m_kernel(spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32]) {
    let GemmSpec { m, k, n, ta, tb, alpha, beta } = spec;
    for i in 0..m {
        let c_row = &mut c[i * n..(i + 1) * n];
        scale_c(c_row, beta);
        match tb {
            Trans::No => {
                // c_row += alpha * Σ_l A[i][l] · B[l][:] — axpy over B rows.
                for l in 0..k {
                    let aval = match ta {
                        Trans::No => a[i * k + l],
                        Trans::Yes => a[l * m + i],
                    };
                    let s = alpha * aval;
                    if s == 0.0 {
                        continue;
                    }
                    simd::axpy(s, &b[l * n..(l + 1) * n], c_row);
                }
            }
            Trans::Yes => {
                // c_row[j] += alpha * dot(A[i][:], B[j][:]).
                match ta {
                    Trans::No => {
                        let a_row = &a[i * k..(i + 1) * k];
                        for (j, cv) in c_row.iter_mut().enumerate() {
                            *cv += alpha * simd::dot(a_row, &b[j * k..(j + 1) * k]);
                        }
                    }
                    Trans::Yes => {
                        for (j, cv) in c_row.iter_mut().enumerate() {
                            let b_row = &b[j * k..(j + 1) * k];
                            let mut acc = 0.0f32;
                            for (l, &bv) in b_row.iter().enumerate() {
                                acc += a[l * m + i] * bv;
                            }
                            *cv += alpha * acc;
                        }
                    }
                }
            }
        }
    }
}

/// The blocked engine: pack panels, sweep the macro-tile grid.
fn blocked(spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32], par: bool) {
    let GemmSpec { m, k, n, ta, tb, alpha, beta } = spec;
    let kern = simd::kernel();
    let bp_len = KC.min(k) * NC.min(n).next_multiple_of(kern.nr);
    let mut bp = vec![0.0f32; bp_len];

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            // The first depth panel applies the caller's beta; subsequent
            // panels accumulate on top of it.
            let beta_eff = if pc == 0 { beta } else { 1.0 };
            pack_b(&mut bp, b, k, n, tb, pc, kc, jc, nc, kern.nr);
            let bp = &bp[..];

            let row_block = |blk: usize, c_blk: &mut [f32]| {
                let row0 = blk * MC;
                let mc = c_blk.len() / n;
                let mut ap = vec![0.0f32; mc.next_multiple_of(MR) * kc];
                pack_a(&mut ap, a, m, k, ta, row0, mc, pc, kc);
                macro_kernel(kern, &ap, bp, c_blk, n, mc, nc, kc, jc, alpha, beta_eff);
            };
            if par {
                c.par_chunks_mut(MC * n).enumerate().for_each(|(blk, c_blk)| {
                    row_block(blk, c_blk);
                });
            } else {
                for (blk, c_blk) in c.chunks_mut(MC * n).enumerate() {
                    row_block(blk, c_blk);
                }
            }
            pc += kc;
        }
        jc += nc;
    }
}

/// Pack `A[row0..row0+mc, pc..pc+kc]` into MR-tall strips: strip `s` holds
/// rows `row0 + s·MR ..`, laid out depth-major so the micro-kernel reads MR
/// consecutive values per depth step. Rows past `mc` stay at the zero the
/// fresh buffer was initialized with (tile padding).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    ap: &mut [f32],
    a: &[f32],
    m: usize,
    k: usize,
    ta: Trans,
    row0: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let strips = mc.div_ceil(MR);
    for strip in 0..strips {
        let dst = &mut ap[strip * MR * kc..(strip + 1) * MR * kc];
        let i0 = row0 + strip * MR;
        let rows = MR.min(row0 + mc - i0);
        match ta {
            Trans::No => {
                // A is m×k row-major: contiguous reads per row, MR-strided
                // writes into the strip.
                for r in 0..rows {
                    let src = &a[(i0 + r) * k + pc..(i0 + r) * k + pc + kc];
                    for (l, &v) in src.iter().enumerate() {
                        dst[l * MR + r] = v;
                    }
                }
            }
            Trans::Yes => {
                // A is stored k×m: each depth step reads MR consecutive
                // elements — both sides contiguous.
                for l in 0..kc {
                    let src = &a[(pc + l) * m + i0..(pc + l) * m + i0 + rows];
                    dst[l * MR..l * MR + rows].copy_from_slice(src);
                }
            }
        }
    }
}

/// Pack `B[pc..pc+kc, jc..jc+nc]` into `nr`-wide strips: strip `s` holds
/// columns `jc + s·nr ..`, depth-major. Every slot is written (the buffer is
/// reused across panels), with columns past `nc` zero-padded. The strip
/// width follows the dispatched micro-kernel.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    bp: &mut [f32],
    b: &[f32],
    k: usize,
    n: usize,
    tb: Trans,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr: usize,
) {
    let strips = nc.div_ceil(nr);
    for strip in 0..strips {
        let dst = &mut bp[strip * nr * kc..(strip + 1) * nr * kc];
        let j0 = jc + strip * nr;
        let cols = nr.min(jc + nc - j0);
        match tb {
            Trans::No => {
                // B is k×n row-major: nr consecutive elements per depth step.
                for l in 0..kc {
                    let d = &mut dst[l * nr..(l + 1) * nr];
                    d[..cols].copy_from_slice(&b[(pc + l) * n + j0..(pc + l) * n + j0 + cols]);
                    d[cols..].fill(0.0);
                }
            }
            Trans::Yes => {
                // B is stored n×k: contiguous reads per B row, nr-strided
                // writes into the strip.
                for jj in 0..nr {
                    if jj < cols {
                        let src = &b[(j0 + jj) * k + pc..(j0 + jj) * k + pc + kc];
                        for (l, &v) in src.iter().enumerate() {
                            dst[l * nr + jj] = v;
                        }
                    } else {
                        for l in 0..kc {
                            dst[l * nr + jj] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

/// Sweep the packed panels over one row macro-block of C: for every
/// (nr-strip, MR-strip) pair run the dispatched register micro-kernel,
/// then blend the tile into C with alpha/beta, clipping the zero-padded
/// edge rows/columns.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    kern: Kernel,
    ap: &[f32],
    bp: &[f32],
    c_blk: &mut [f32],
    n: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    jc: usize,
    alpha: f32,
    beta_eff: f32,
) {
    let nr = kern.nr;
    let m_strips = mc.div_ceil(MR);
    let n_strips = nc.div_ceil(nr);
    for sj in 0..n_strips {
        let b_strip = &bp[sj * nr * kc..(sj + 1) * nr * kc];
        let j0 = jc + sj * nr;
        let cols = nr.min(jc + nc - j0);
        for si in 0..m_strips {
            let a_strip = &ap[si * MR * kc..(si + 1) * MR * kc];
            let i0 = si * MR;
            let rows = MR.min(mc - i0);
            let mut acc: Acc = [[0.0; NR_MAX]; MR];
            // SAFETY: both strips are exactly kc·MR / kc·nr elements, and
            // the AVX2 tile is only ever selected after feature detection.
            unsafe { (kern.micro)(kc, a_strip, b_strip, &mut acc) };
            for (r, acc_row) in acc.iter().enumerate().take(rows) {
                let c_row = &mut c_blk[(i0 + r) * n + j0..(i0 + r) * n + j0 + cols];
                if beta_eff == 0.0 {
                    for (cv, &av) in c_row.iter_mut().zip(acc_row.iter()) {
                        *cv = alpha * av;
                    }
                } else if beta_eff == 1.0 {
                    for (cv, &av) in c_row.iter_mut().zip(acc_row.iter()) {
                        *cv += alpha * av;
                    }
                } else {
                    for (cv, &av) in c_row.iter_mut().zip(acc_row.iter()) {
                        *cv = alpha * av + beta_eff * *cv;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for l in 0..k {
                    c[i * n + j] += a[i * k + l] * b[l * n + j];
                }
            }
        }
        c
    }

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect()
    }

    fn assert_close(got: &[f32], want: &[f32]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            let tol = 1e-4 * w.abs().max(1.0);
            assert!((g - w).abs() <= tol, "mismatch at {i}: {g} vs {w}");
        }
    }

    #[test]
    fn nn_matches_naive() {
        let (m, k, n) = (13, 9, 17);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        sgemm(GemmSpec::nn(m, k, n), &a, &b, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn nt_matches_naive() {
        let (m, k, n) = (8, 5, 12);
        let a = seq(m * k);
        let b_t = seq(n * k); // stored n×k, logically k×n transposed
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for l in 0..k {
                b[l * n + j] = b_t[j * k + l];
            }
        }
        let mut c = vec![0.0; m * n];
        sgemm(GemmSpec::nt(m, k, n), &a, &b_t, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn tn_matches_naive() {
        let (m, k, n) = (6, 7, 5);
        let a_t = seq(k * m); // stored k×m
        let mut a = vec![0.0; m * k];
        for i in 0..m {
            for l in 0..k {
                a[i * k + l] = a_t[l * m + i];
            }
        }
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        let spec = GemmSpec { ta: Trans::Yes, ..GemmSpec::nn(m, k, n) };
        sgemm(spec, &a_t, &b, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn tt_matches_naive() {
        let (m, k, n) = (9, 6, 11);
        let a_t = seq(k * m); // stored k×m
        let b_t = seq(n * k); // stored n×k
        let mut a = vec![0.0; m * k];
        for i in 0..m {
            for l in 0..k {
                a[i * k + l] = a_t[l * m + i];
            }
        }
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for l in 0..k {
                b[l * n + j] = b_t[j * k + l];
            }
        }
        let mut c = vec![0.0; m * n];
        let spec = GemmSpec { ta: Trans::Yes, tb: Trans::Yes, ..GemmSpec::nn(m, k, n) };
        sgemm(spec, &a_t, &b_t, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn tile_boundary_shapes_match_naive() {
        // Exercise every edge class: below one tile, exact multiples, one
        // past a multiple, and depths straddling the KC panel boundary.
        for &(m, k, n) in &[
            (1, 1, 1),
            (MR, 3, NR),
            (MR + 1, KC, NR + 1),
            (MC, 5, NR * 2),
            (MC + 3, KC + 7, NC.min(70) + 1),
            (33, 2 * KC + 5, 17),
            (SMALL_M, 40, 40),     // thin path
            (SMALL_M + 1, 40, 40), // first blocked size
        ] {
            let a = seq(m * k);
            let b = seq(k * n);
            let mut c = vec![0.0; m * n];
            sgemm(GemmSpec::nn(m, k, n), &a, &b, &mut c);
            assert_close(&c, &naive(m, k, n, &a, &b));
        }
    }

    #[test]
    fn alpha_beta_combine() {
        let (m, k, n) = (4, 3, 4);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![1.0; m * n];
        sgemm(GemmSpec::nn(m, k, n).with_alpha(2.0).with_beta(0.5), &a, &b, &mut c);
        let base = naive(m, k, n, &a, &b);
        for (got, want) in c.iter().zip(base.iter()) {
            assert!((got - (2.0 * want + 0.5)).abs() < 1e-5);
        }
    }

    #[test]
    fn alpha_beta_combine_across_depth_panels() {
        // k > KC: only the first depth panel may apply beta.
        let (m, k, n) = (MR * 3, KC + 9, NR * 2);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c: Vec<f32> = (0..m * n).map(|i| (i % 5) as f32).collect();
        let before = c.clone();
        sgemm(GemmSpec::nn(m, k, n).with_alpha(0.5).with_beta(2.0), &a, &b, &mut c);
        let base = naive(m, k, n, &a, &b);
        for ((got, want), old) in c.iter().zip(base.iter()).zip(before.iter()) {
            let expect = 0.5 * want + 2.0 * old;
            let tol = 1e-4 * expect.abs().max(1.0);
            assert!((got - expect).abs() <= tol, "{got} vs {expect}");
        }
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        for &(m, k, n) in &[(3, 2, 3), (MR + 2, KC + 1, NR + 3)] {
            let a = seq(m * k);
            let b = seq(k * n);
            let mut c = vec![f32::NAN; m * n];
            sgemm(GemmSpec::nn(m, k, n), &a, &b, &mut c);
            assert!(c.iter().all(|v| v.is_finite()), "beta=0 must ignore prior C, even NaN");
        }
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let (m, k, n) = (6, 8, 7);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![3.0; m * n];
        sgemm(GemmSpec::nn(m, k, n).with_alpha(0.0).with_beta(0.5), &a, &b, &mut c);
        assert!(c.iter().all(|&v| (v - 1.5).abs() < 1e-6));
    }

    #[test]
    fn parallel_matches_serial_on_large_shape() {
        let (m, k, n) = (130, 64, 70);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        sgemm(GemmSpec::nn(m, k, n), &a, &b, &mut c1);
        sgemm_serial(GemmSpec::nn(m, k, n), &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(c2.iter()) {
            assert!((x - y).abs() <= 1e-3, "parallel and serial disagree: {x} vs {y}");
        }
    }

    #[test]
    fn batched_matches_loop_of_serial() {
        let batch = 5;
        let spec = GemmSpec::nt(6, 8, 7);
        let a = seq(batch * spec.m * spec.k);
        let b = seq(batch * spec.n * spec.k);
        let mut c = vec![0.0; batch * spec.m * spec.n];
        batched_sgemm(batch, spec, &a, &b, &mut c);
        for i in 0..batch {
            let mut want = vec![0.0; spec.m * spec.n];
            sgemm_serial(
                spec,
                &a[i * spec.m * spec.k..(i + 1) * spec.m * spec.k],
                &b[i * spec.k * spec.n..(i + 1) * spec.k * spec.n],
                &mut want,
            );
            assert_eq!(&c[i * spec.m * spec.n..(i + 1) * spec.m * spec.n], &want[..]);
        }
    }

    #[test]
    fn batched_large_per_gemm_path_matches() {
        // Large per-head flops with a small batch takes the intra-GEMM
        // parallelism branch; both branches must agree with serial.
        let batch = 2;
        let spec = GemmSpec::nn(96, 80, 96);
        let a = seq(batch * spec.m * spec.k);
        let b = seq(batch * spec.k * spec.n);
        let mut c = vec![0.0; batch * spec.m * spec.n];
        batched_sgemm(batch, spec, &a, &b, &mut c);
        for i in 0..batch {
            let mut want = vec![0.0; spec.m * spec.n];
            sgemm_serial(
                spec,
                &a[i * spec.m * spec.k..(i + 1) * spec.m * spec.k],
                &b[i * spec.k * spec.n..(i + 1) * spec.k * spec.n],
                &mut want,
            );
            assert_close(&c[i * spec.m * spec.n..(i + 1) * spec.m * spec.n], &want);
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c: Vec<f32> = vec![];
        sgemm(GemmSpec::nn(0, 4, 0), &[], &[], &mut c);
        batched_sgemm(0, GemmSpec::nn(2, 2, 2), &[], &[], &mut c);
    }

    #[test]
    fn k_zero_scales_c_only() {
        let mut c = vec![2.0; 6];
        sgemm(GemmSpec::nn(2, 0, 3).with_beta(0.5), &[], &[], &mut c);
        assert!(c.iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn flops_counts_fma_as_two() {
        assert_eq!(GemmSpec::nn(2, 3, 4).flops(), 48);
    }

    #[test]
    fn decode_shapes_take_the_gemv_path() {
        // The single-token decode GEMMs of `step_paged` are m=1 over large
        // k/n; they must hit the unpacked thin kernel, not the packed
        // engine (satellite regression guard for the decode fast path).
        for &(k, n) in &[(768, 768), (768, 3072), (3072, 768), (768, 50257)] {
            assert_eq!(kernel_path(GemmSpec::nn(1, k, n)), KernelPath::Gemv, "m=1 {k}x{n}");
        }
        assert_eq!(kernel_path(GemmSpec::nt(1, 64, 128)), KernelPath::Gemv);
        assert_eq!(kernel_path(GemmSpec::nn(SMALL_M, 64, 64)), KernelPath::Gemv);
        assert_eq!(kernel_path(GemmSpec::nn(SMALL_M + 1, 64, 64)), KernelPath::Blocked);
        assert_eq!(kernel_path(GemmSpec::nn(0, 4, 4)), KernelPath::Noop);
        assert_eq!(kernel_path(GemmSpec::nn(2, 0, 4)), KernelPath::ScaleOnly);
    }

    #[test]
    fn scalar_and_simd_kernels_agree() {
        // Force both variants over a mix of blocked and thin shapes; the
        // results may differ only by f32 reassociation.
        use crate::simd::{kernel_variant, set_kernel_override, KernelVariant};
        let prev = kernel_variant();
        if set_kernel_override(KernelVariant::Avx2).is_err() {
            return; // no AVX2 on this host: the scalar path is the only path
        }
        for &(m, k, n) in &[(1, 300, 80), (4, 65, 33), (13, 200, 47), (64, 768, 96), (130, 64, 70)]
        {
            let a = seq(m * k);
            let b = seq(k * n);
            let mut c_simd = vec![0.0; m * n];
            set_kernel_override(KernelVariant::Avx2).unwrap();
            sgemm_serial(GemmSpec::nn(m, k, n), &a, &b, &mut c_simd);
            let mut c_scalar = vec![0.0; m * n];
            set_kernel_override(KernelVariant::Scalar).unwrap();
            sgemm_serial(GemmSpec::nn(m, k, n), &a, &b, &mut c_scalar);
            assert_close(&c_simd, &c_scalar);
        }
        set_kernel_override(prev).unwrap();
    }
}
