//! Cache-blocked, rayon-parallel single-precision matrix multiply.
//!
//! This is the cuBLAS `sgemm` stand-in of the reproduction: every GEMM in the
//! transformer graph (QKV projections, attention score/context products, FFN
//! layers, output projections) funnels through [`sgemm`] or
//! [`batched_sgemm`]. The implementation favours the two layouts transformer
//! inference actually hits — `NN` (activations × weights) and `NT`
//! (query × keyᵀ) — with specialized inner loops that auto-vectorize.

use rayon::prelude::*;

/// Transpose flag for a GEMM operand, mirroring BLAS conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Full problem description for a GEMM call:
/// `C = alpha * op(A) * op(B) + beta * C` with `op(A): m×k`, `op(B): k×n`.
#[derive(Debug, Clone, Copy)]
pub struct GemmSpec {
    /// Rows of `op(A)` and of `C`.
    pub m: usize,
    /// Inner (contraction) dimension.
    pub k: usize,
    /// Columns of `op(B)` and of `C`.
    pub n: usize,
    /// Transpose flag for `A`.
    pub ta: Trans,
    /// Transpose flag for `B`.
    pub tb: Trans,
    /// Scale applied to the product.
    pub alpha: f32,
    /// Scale applied to the existing contents of `C`.
    pub beta: f32,
}

impl GemmSpec {
    /// A plain `C = A·B` spec.
    pub fn nn(m: usize, k: usize, n: usize) -> Self {
        GemmSpec { m, k, n, ta: Trans::No, tb: Trans::No, alpha: 1.0, beta: 0.0 }
    }

    /// A `C = A·Bᵀ` spec (attention scores: Q × Kᵀ).
    pub fn nt(m: usize, k: usize, n: usize) -> Self {
        GemmSpec { m, k, n, ta: Trans::No, tb: Trans::Yes, alpha: 1.0, beta: 0.0 }
    }

    /// Builder: set `alpha`.
    pub fn with_alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Builder: set `beta`.
    pub fn with_beta(mut self, beta: f32) -> Self {
        self.beta = beta;
        self
    }

    /// Floating point operations performed by this GEMM (2·m·n·k).
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// Number of `C` rows each rayon task owns. Large enough to amortize task
/// dispatch, small enough to load-balance BERT-sized shapes (m up to a few
/// thousand).
const ROW_BLOCK: usize = 32;

/// `C = alpha * op(A) * op(B) + beta * C`, row-major, parallel over row
/// blocks of `C`.
///
/// Panics if the slice lengths do not match the spec — shape errors here are
/// always runtime-construction bugs, not data-dependent conditions.
pub fn sgemm(spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32]) {
    let GemmSpec { m, k, n, ta, tb, alpha, beta } = spec;
    assert_eq!(a.len(), m * k, "A has wrong length for {spec:?}");
    assert_eq!(b.len(), k * n, "B has wrong length for {spec:?}");
    assert_eq!(c.len(), m * n, "C has wrong length for {spec:?}");
    if m == 0 || n == 0 {
        return;
    }

    // TT and TN reduce to NT / NN on a transposed copy of A. A is m×k at
    // most (hidden × 4·hidden for FFN), so the copy is cheap relative to the
    // O(mnk) multiply, and it keeps the hot inner loops contiguous.
    let a_owned: Vec<f32>;
    let (a, ta) = match ta {
        Trans::No => (a, Trans::No),
        Trans::Yes => {
            // stored A is k-rows × m-cols; produce m×k.
            let mut t = vec![0.0f32; m * k];
            for r in 0..k {
                for cix in 0..m {
                    t[cix * k + r] = a[r * m + cix];
                }
            }
            a_owned = t;
            (&a_owned[..], Trans::No)
        }
    };
    debug_assert_eq!(ta, Trans::No);

    c.par_chunks_mut(ROW_BLOCK * n).enumerate().for_each(|(blk, c_blk)| {
        let row0 = blk * ROW_BLOCK;
        let rows = c_blk.len() / n;
        match tb {
            Trans::No => {
                // C[i][j] = Σ_l A[i][l] · B[l][j]; axpy over rows of B.
                for (ri, c_row) in c_blk.chunks_exact_mut(n).enumerate() {
                    let i = row0 + ri;
                    if beta == 0.0 {
                        c_row.fill(0.0);
                    } else {
                        for v in c_row.iter_mut() {
                            *v *= beta;
                        }
                    }
                    let a_row = &a[i * k..(i + 1) * k];
                    for (l, &aval) in a_row.iter().enumerate() {
                        let s = alpha * aval;
                        if s == 0.0 {
                            continue;
                        }
                        let b_row = &b[l * n..(l + 1) * n];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                            *cv += s * bv;
                        }
                    }
                }
            }
            Trans::Yes => {
                // C[i][j] = Σ_l A[i][l] · B[j][l]; dot products of rows.
                for (ri, c_row) in c_blk.chunks_exact_mut(n).enumerate() {
                    let i = row0 + ri;
                    let _ = rows;
                    let a_row = &a[i * k..(i + 1) * k];
                    for (j, cv) in c_row.iter_mut().enumerate() {
                        let b_row = &b[j * k..(j + 1) * k];
                        let mut acc = 0.0f32;
                        for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                            acc += av * bv;
                        }
                        *cv = alpha * acc + if beta == 0.0 { 0.0 } else { beta * *cv };
                    }
                }
            }
        }
    });
}

/// Batched GEMM: `batch` independent multiplies with identical specs, the
/// operands laid out back to back. This is the cuBLAS strided-batched GEMM
/// used for per-head attention products.
pub fn batched_sgemm(batch: usize, spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32]) {
    let (sa, sb, sc) = (spec.m * spec.k, spec.k * spec.n, spec.m * spec.n);
    assert_eq!(a.len(), batch * sa, "batched A has wrong length");
    assert_eq!(b.len(), batch * sb, "batched B has wrong length");
    assert_eq!(c.len(), batch * sc, "batched C has wrong length");
    if batch == 0 {
        return;
    }
    // Parallelism lives inside each sgemm already; for the small per-head
    // matrices attention produces, parallelizing across the batch instead is
    // the better split.
    c.par_chunks_mut(sc).enumerate().for_each(|(i, c_i)| {
        sgemm_serial(spec, &a[i * sa..(i + 1) * sa], &b[i * sb..(i + 1) * sb], c_i);
    });
}

/// Serial GEMM used inside [`batched_sgemm`] tasks (avoids nested
/// parallelism) and exported for deterministic microbenches.
pub fn sgemm_serial(spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32]) {
    let GemmSpec { m, k, n, ta, tb, alpha, beta } = spec;
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    let at = |i: usize, l: usize| -> f32 {
        match ta {
            Trans::No => a[i * k + l],
            Trans::Yes => a[l * m + i],
        }
    };
    let bt = |l: usize, j: usize| -> f32 {
        match tb {
            Trans::No => b[l * n + j],
            Trans::Yes => b[j * k + l],
        }
    };
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += at(i, l) * bt(l, j);
            }
            let prev = c[i * n + j];
            c[i * n + j] = alpha * acc + if beta == 0.0 { 0.0 } else { beta * prev };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for l in 0..k {
                    c[i * n + j] += a[i * k + l] * b[l * n + j];
                }
            }
        }
        c
    }

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect()
    }

    #[test]
    fn nn_matches_naive() {
        let (m, k, n) = (13, 9, 17);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        sgemm(GemmSpec::nn(m, k, n), &a, &b, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn nt_matches_naive() {
        let (m, k, n) = (8, 5, 12);
        let a = seq(m * k);
        let b_t = seq(n * k); // stored n×k, logically k×n transposed
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for l in 0..k {
                b[l * n + j] = b_t[j * k + l];
            }
        }
        let mut c = vec![0.0; m * n];
        sgemm(GemmSpec::nt(m, k, n), &a, &b_t, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn tn_matches_naive() {
        let (m, k, n) = (6, 7, 5);
        let a_t = seq(k * m); // stored k×m
        let mut a = vec![0.0; m * k];
        for i in 0..m {
            for l in 0..k {
                a[i * k + l] = a_t[l * m + i];
            }
        }
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        let spec = GemmSpec { ta: Trans::Yes, ..GemmSpec::nn(m, k, n) };
        sgemm(spec, &a_t, &b, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn alpha_beta_combine() {
        let (m, k, n) = (4, 3, 4);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![1.0; m * n];
        sgemm(GemmSpec::nn(m, k, n).with_alpha(2.0).with_beta(0.5), &a, &b, &mut c);
        let base = naive(m, k, n, &a, &b);
        for (got, want) in c.iter().zip(base.iter()) {
            assert!((got - (2.0 * want + 0.5)).abs() < 1e-5);
        }
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let (m, k, n) = (3, 2, 3);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![f32::NAN; m * n];
        sgemm(GemmSpec::nn(m, k, n), &a, &b, &mut c);
        assert!(c.iter().all(|v| v.is_finite()), "beta=0 must ignore prior C, even NaN");
    }

    #[test]
    fn parallel_matches_serial_on_large_shape() {
        let (m, k, n) = (130, 64, 70);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        sgemm(GemmSpec::nn(m, k, n), &a, &b, &mut c1);
        sgemm_serial(GemmSpec::nn(m, k, n), &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(c2.iter()) {
            assert!((x - y).abs() <= 1e-3, "parallel and serial disagree: {x} vs {y}");
        }
    }

    #[test]
    fn batched_matches_loop_of_serial() {
        let batch = 5;
        let spec = GemmSpec::nt(6, 8, 7);
        let a = seq(batch * spec.m * spec.k);
        let b = seq(batch * spec.n * spec.k);
        let mut c = vec![0.0; batch * spec.m * spec.n];
        batched_sgemm(batch, spec, &a, &b, &mut c);
        for i in 0..batch {
            let mut want = vec![0.0; spec.m * spec.n];
            sgemm_serial(
                spec,
                &a[i * spec.m * spec.k..(i + 1) * spec.m * spec.k],
                &b[i * spec.k * spec.n..(i + 1) * spec.k * spec.n],
                &mut want,
            );
            assert_eq!(&c[i * spec.m * spec.n..(i + 1) * spec.m * spec.n], &want[..]);
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c: Vec<f32> = vec![];
        sgemm(GemmSpec::nn(0, 4, 0), &[], &[], &mut c);
        batched_sgemm(0, GemmSpec::nn(2, 2, 2), &[], &[], &mut c);
    }

    #[test]
    fn flops_counts_fma_as_two() {
        assert_eq!(GemmSpec::nn(2, 3, 4).flops(), 48);
    }
}
