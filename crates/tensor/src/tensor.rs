//! The owned dense tensor type.

use crate::shape::Shape;
use crate::{Result, TensorError};

/// A dense, row-major, owned `f32` tensor.
///
/// This is the type that crosses public API boundaries: model weights,
/// request inputs and inference outputs. Inside the planned runtime,
/// intermediate activations live in an [`crate::storage::Arena`] instead and
/// never materialize as `Tensor`s.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor { shape, data: vec![value; n] }
    }

    /// Build a tensor from existing data; the data length must match the
    /// shape's element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.num_elements() != data.len() {
            return Err(TensorError::ShapeMismatch {
                context: "Tensor::from_vec",
                detail: format!(
                    "shape {shape} needs {} elements, got {}",
                    shape.num_elements(),
                    data.len()
                ),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Build a tensor by evaluating `f` at every linear index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        let data = (0..n).map(&mut f).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Flat element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat immutable view of the elements, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the elements, row-major.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    #[inline]
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Set the element at a multi-dimensional index.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Reinterpret the tensor with a new shape of identical element count.
    pub fn reshape(self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.num_elements() != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                context: "Tensor::reshape",
                detail: format!(
                    "cannot view {} elements as {shape} ({} elements)",
                    self.data.len(),
                    shape.num_elements()
                ),
            });
        }
        Ok(Tensor { shape, data: self.data })
    }

    /// The contiguous row `r` of a 2-D view `(rows, cols)` of this tensor.
    ///
    /// Uses [`Shape::as_batch_rows`]: all leading dims fold into `rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        let (rows, cols) = self.shape.as_batch_rows();
        assert!(r < rows, "row {r} out of bounds for {rows} rows");
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Largest absolute difference to another tensor of identical shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                context: "Tensor::max_abs_diff",
                detail: format!("{} vs {}", self.shape, other.shape),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Whether all pairwise differences to `other` are within `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        matches!(self.max_abs_diff(other), Ok(d) if d <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Tensor::full([2, 2], 3.5);
        assert!(f.as_slice().iter().all(|&x| x == 3.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        assert!(Tensor::from_vec([2, 2], vec![1.0; 5]).is_err());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros([2, 3, 4]);
        t.set(&[1, 2, 3], 7.0);
        assert_eq!(t.get(&[1, 2, 3]), 7.0);
        assert_eq!(t.as_slice()[12 + 2 * 4 + 3], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn([2, 6], |i| i as f32);
        let r = t.clone().reshape([3, 4]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape([5, 5]).is_err());
    }

    #[test]
    fn row_views_are_contiguous() {
        let t = Tensor::from_fn([2, 3, 4], |i| i as f32);
        // rows fold leading dims: row 3 is elements 12..16.
        assert_eq!(t.row(3), &[12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![1.0, 2.5, 3.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert!(a.approx_eq(&b, 0.5));
        assert!(!a.approx_eq(&b, 0.4));
        let c = Tensor::zeros([4]);
        assert!(a.max_abs_diff(&c).is_err());
    }
}
