//! Runtime-dispatched GEMM micro-kernels: explicit AVX2+FMA register tiles
//! with a portable scalar fallback.
//!
//! The packed-panel engine in [`crate::gemm`] is kernel-agnostic: packing
//! always produces MR-tall A strips and `nr`-wide B strips, and the only
//! code that differs per architecture is the innermost register tile. This
//! module owns that tile, selected **once per process** (cached in an
//! atomic) from, in priority order:
//!
//! 1. an explicit override installed by [`set_kernel_override`] (benches
//!    use this to measure the scalar and SIMD paths side by side);
//! 2. the `TT_GEMM_KERNEL` environment variable (`scalar` | `simd`);
//! 3. CPU feature detection (`avx2` + `fma` → the AVX2 tile).
//!
//! Two tiles exist:
//!
//! - **scalar** — the portable 4×8 accumulator block; fixed-size array
//!   arithmetic that auto-vectorizes to two 4-wide vectors per C row on the
//!   SSE2 baseline. This is both the non-x86 fallback and the reference the
//!   CI smoke diffs the SIMD path against.
//! - **avx2** — a 4×16 tile: eight YMM accumulators (two per C row), one
//!   FMA chain each, which is exactly the eight in-flight chains needed to
//!   cover FMA latency (4 cycles) at full throughput (2/cycle). Per depth
//!   step it issues two B loads and four A broadcasts, staying under the
//!   two-loads-per-cycle port budget, so large GEMMs run FMA-bound rather
//!   than load-bound.
//!
//! The selected variant is visible through [`kernel_variant`] /
//! [`kernel_variant_name`] so servers can log it at startup and benches can
//! attribute their numbers to the path actually taken (the
//! `gemm_kernel_variant` gauge in `tt-serving`).

use std::sync::atomic::{AtomicU8, Ordering};

use crate::gemm::MR;

/// Widest B-strip the engine packs (the AVX2 tile's NR). Accumulator
/// blocks are sized for this so both tiles share one type.
pub const NR_MAX: usize = 16;

/// The register accumulator block handed to a micro-kernel. Tiles with
/// `nr < NR_MAX` leave the upper columns untouched.
pub(crate) type Acc = [[f32; NR_MAX]; MR];

/// Which micro-kernel implementation the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// Portable auto-vectorized 4×8 tile (SSE2 baseline, non-x86 fallback).
    Scalar,
    /// Explicit AVX2+FMA 4×16 tile (runtime-detected).
    Avx2,
}

impl KernelVariant {
    /// Stable label used in logs, gauges, and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Avx2 => "avx2",
        }
    }
}

/// A resolved micro-kernel: its B-strip width and the tile function.
#[derive(Clone, Copy)]
pub(crate) struct Kernel {
    /// Columns of the register tile (B strips are packed this wide).
    pub nr: usize,
    /// The tile: `acc[r][0..nr] += Σ_l a_strip[l·MR+r] · b_strip[l·nr..]`.
    ///
    /// # Safety
    /// `a_strip` must hold at least `kc·MR` elements and `b_strip` at
    /// least `kc·nr`; the AVX2 tile additionally requires the CPU to
    /// support AVX2+FMA (guaranteed by construction: it is only selected
    /// after feature detection).
    pub micro: unsafe fn(kc: usize, a_strip: &[f32], b_strip: &[f32], acc: &mut Acc),
}

const UNRESOLVED: u8 = 0;
const SCALAR: u8 = 1;
const AVX2: u8 = 2;

static SELECTED: AtomicU8 = AtomicU8::new(UNRESOLVED);

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn resolve() -> KernelVariant {
    match SELECTED.load(Ordering::Relaxed) {
        SCALAR => return KernelVariant::Scalar,
        AVX2 => return KernelVariant::Avx2,
        _ => {}
    }
    let picked = match std::env::var("TT_GEMM_KERNEL").as_deref() {
        Ok("scalar") => KernelVariant::Scalar,
        Ok("simd") | Ok("avx2") if avx2_available() => KernelVariant::Avx2,
        _ => {
            if avx2_available() {
                KernelVariant::Avx2
            } else {
                KernelVariant::Scalar
            }
        }
    };
    let code = match picked {
        KernelVariant::Scalar => SCALAR,
        KernelVariant::Avx2 => AVX2,
    };
    SELECTED.store(code, Ordering::Relaxed);
    picked
}

/// The micro-kernel variant this process dispatches to.
pub fn kernel_variant() -> KernelVariant {
    resolve()
}

/// [`kernel_variant`] as its log/gauge label.
pub fn kernel_variant_name() -> &'static str {
    kernel_variant().name()
}

/// Force a specific micro-kernel for the rest of the process (or until the
/// next override). Benches use this to time the scalar and SIMD paths on
/// the same machine; it is not intended for production configuration
/// (use `TT_GEMM_KERNEL` there).
///
/// Returns `Err` — leaving the selection unchanged — if the requested
/// variant is not supported on this CPU.
pub fn set_kernel_override(variant: KernelVariant) -> std::result::Result<(), &'static str> {
    let code = match variant {
        KernelVariant::Scalar => SCALAR,
        KernelVariant::Avx2 => {
            if !avx2_available() {
                return Err("avx2+fma not available on this CPU");
            }
            AVX2
        }
    };
    SELECTED.store(code, Ordering::Relaxed);
    Ok(())
}

/// The kernel descriptor for the currently selected variant.
pub(crate) fn kernel() -> Kernel {
    match resolve() {
        KernelVariant::Scalar => Kernel { nr: 8, micro: micro_scalar },
        #[cfg(target_arch = "x86_64")]
        KernelVariant::Avx2 => Kernel { nr: NR_MAX, micro: micro_avx2 },
        #[cfg(not(target_arch = "x86_64"))]
        KernelVariant::Avx2 => unreachable!("avx2 variant cannot be selected off x86_64"),
    }
}

/// Portable 4×8 tile: fixed-size array arithmetic the compiler unrolls and
/// auto-vectorizes on the SSE2 baseline. Marked `unsafe` only to share the
/// dispatch signature; it has no safety requirements beyond the slice
/// lengths in the [`Kernel::micro`] contract.
unsafe fn micro_scalar(kc: usize, a_strip: &[f32], b_strip: &[f32], acc: &mut Acc) {
    const NR: usize = 8;
    for (av, bv) in a_strip.chunks_exact(MR).zip(b_strip.chunks_exact(NR)).take(kc) {
        let av: &[f32; MR] = av.try_into().expect("MR-sized chunk");
        let bv: &[f32; NR] = bv.try_into().expect("NR-sized chunk");
        for (acc_row, &a_val) in acc.iter_mut().zip(av.iter()) {
            for (acc_v, &b_val) in acc_row[..NR].iter_mut().zip(bv.iter()) {
                *acc_v += a_val * b_val;
            }
        }
    }
}

/// Explicit AVX2+FMA 4×16 tile. Eight YMM accumulators carry eight
/// independent FMA chains; per depth step: two 8-wide B loads, four A
/// broadcasts, eight FMAs.
///
/// # Safety
/// Requires AVX2+FMA (ensured by selection) and the slice lengths of the
/// [`Kernel::micro`] contract.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_avx2(kc: usize, a_strip: &[f32], b_strip: &[f32], acc: &mut Acc) {
    use core::arch::x86_64::*;
    debug_assert!(a_strip.len() >= kc * MR && b_strip.len() >= kc * NR_MAX);
    let ap = a_strip.as_ptr();
    let bp = b_strip.as_ptr();
    let mut c00 = _mm256_setzero_ps();
    let mut c01 = _mm256_setzero_ps();
    let mut c10 = _mm256_setzero_ps();
    let mut c11 = _mm256_setzero_ps();
    let mut c20 = _mm256_setzero_ps();
    let mut c21 = _mm256_setzero_ps();
    let mut c30 = _mm256_setzero_ps();
    let mut c31 = _mm256_setzero_ps();
    for l in 0..kc {
        let b0 = _mm256_loadu_ps(bp.add(l * NR_MAX));
        let b1 = _mm256_loadu_ps(bp.add(l * NR_MAX + 8));
        let a0 = _mm256_broadcast_ss(&*ap.add(l * MR));
        c00 = _mm256_fmadd_ps(a0, b0, c00);
        c01 = _mm256_fmadd_ps(a0, b1, c01);
        let a1 = _mm256_broadcast_ss(&*ap.add(l * MR + 1));
        c10 = _mm256_fmadd_ps(a1, b0, c10);
        c11 = _mm256_fmadd_ps(a1, b1, c11);
        let a2 = _mm256_broadcast_ss(&*ap.add(l * MR + 2));
        c20 = _mm256_fmadd_ps(a2, b0, c20);
        c21 = _mm256_fmadd_ps(a2, b1, c21);
        let a3 = _mm256_broadcast_ss(&*ap.add(l * MR + 3));
        c30 = _mm256_fmadd_ps(a3, b0, c30);
        c31 = _mm256_fmadd_ps(a3, b1, c31);
    }
    _mm256_storeu_ps(acc[0].as_mut_ptr(), c00);
    _mm256_storeu_ps(acc[0].as_mut_ptr().add(8), c01);
    _mm256_storeu_ps(acc[1].as_mut_ptr(), c10);
    _mm256_storeu_ps(acc[1].as_mut_ptr().add(8), c11);
    _mm256_storeu_ps(acc[2].as_mut_ptr(), c20);
    _mm256_storeu_ps(acc[2].as_mut_ptr().add(8), c21);
    _mm256_storeu_ps(acc[3].as_mut_ptr(), c30);
    _mm256_storeu_ps(acc[3].as_mut_ptr().add(8), c31);
}

/// `y += s · x` — the axpy update of the thin-GEMV path, SIMD-dispatched.
pub(crate) fn axpy(s: f32, x: &[f32], y: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if kernel_variant() == KernelVariant::Avx2 {
        // SAFETY: avx2+fma verified by selection.
        unsafe { axpy_avx2(s, x, y) };
        return;
    }
    for (yv, &xv) in y.iter_mut().zip(x.iter()) {
        *yv += s * xv;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_avx2(s: f32, x: &[f32], y: &mut [f32]) {
    use core::arch::x86_64::*;
    let n = x.len().min(y.len());
    let sv = _mm256_set1_ps(s);
    let mut i = 0;
    while i + 16 <= n {
        let y0 = _mm256_loadu_ps(y.as_ptr().add(i));
        let y1 = _mm256_loadu_ps(y.as_ptr().add(i + 8));
        let x0 = _mm256_loadu_ps(x.as_ptr().add(i));
        let x1 = _mm256_loadu_ps(x.as_ptr().add(i + 8));
        _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_fmadd_ps(sv, x0, y0));
        _mm256_storeu_ps(y.as_mut_ptr().add(i + 8), _mm256_fmadd_ps(sv, x1, y1));
        i += 16;
    }
    while i < n {
        *y.get_unchecked_mut(i) += s * x.get_unchecked(i);
        i += 1;
    }
}

/// `Σ x[i]·y[i]` — the dot product of the thin-GEMV transposed path,
/// SIMD-dispatched.
pub(crate) fn dot(x: &[f32], y: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if kernel_variant() == KernelVariant::Avx2 {
        // SAFETY: avx2+fma verified by selection.
        return unsafe { dot_avx2(x, y) };
    }
    x.iter().zip(y.iter()).map(|(&a, &b)| a * b).sum()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_avx2(x: &[f32], y: &[f32]) -> f32 {
    use core::arch::x86_64::*;
    let n = x.len().min(y.len());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 32 <= n {
        acc0 = _mm256_fmadd_ps(
            _mm256_loadu_ps(x.as_ptr().add(i)),
            _mm256_loadu_ps(y.as_ptr().add(i)),
            acc0,
        );
        acc1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(x.as_ptr().add(i + 8)),
            _mm256_loadu_ps(y.as_ptr().add(i + 8)),
            acc1,
        );
        acc2 = _mm256_fmadd_ps(
            _mm256_loadu_ps(x.as_ptr().add(i + 16)),
            _mm256_loadu_ps(y.as_ptr().add(i + 16)),
            acc2,
        );
        acc3 = _mm256_fmadd_ps(
            _mm256_loadu_ps(x.as_ptr().add(i + 24)),
            _mm256_loadu_ps(y.as_ptr().add(i + 24)),
            acc3,
        );
        i += 32;
    }
    while i + 8 <= n {
        acc0 = _mm256_fmadd_ps(
            _mm256_loadu_ps(x.as_ptr().add(i)),
            _mm256_loadu_ps(y.as_ptr().add(i)),
            acc0,
        );
        i += 8;
    }
    let sum = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
    let hi = _mm256_extractf128_ps(sum, 1);
    let lo = _mm256_castps256_ps128(sum);
    let q = _mm_add_ps(lo, hi);
    let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
    let s = _mm_add_ss(d, _mm_shuffle_ps(d, d, 1));
    let mut total = _mm_cvtss_f32(s);
    while i < n {
        total += x.get_unchecked(i) * y.get_unchecked(i);
        i += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 13 + 5) % 17) as f32 * 0.25 - 2.0).collect()
    }

    #[test]
    fn variant_resolves_and_names() {
        let v = kernel_variant();
        assert!(!v.name().is_empty());
        assert_eq!(kernel_variant_name(), v.name());
    }

    #[test]
    fn scalar_override_always_honored() {
        let prev = kernel_variant();
        set_kernel_override(KernelVariant::Scalar).unwrap();
        assert_eq!(kernel_variant(), KernelVariant::Scalar);
        set_kernel_override(prev).unwrap();
    }

    #[test]
    fn micro_kernels_agree_on_shared_columns() {
        // The scalar tile covers 8 columns; when AVX2 is available its
        // 16-column tile must produce identical sums on those columns for
        // a B strip replicated to both widths.
        let kc = 37;
        let a = seq(kc * MR);
        let b8 = seq(kc * 8);
        let mut acc_s: Acc = [[0.0; NR_MAX]; MR];
        // SAFETY: slice lengths satisfy the micro contract.
        unsafe { micro_scalar(kc, &a, &b8, &mut acc_s) };
        // Reference accumulation.
        let mut want = [[0.0f32; 8]; MR];
        for l in 0..kc {
            for r in 0..MR {
                for c in 0..8 {
                    want[r][c] += a[l * MR + r] * b8[l * 8 + c];
                }
            }
        }
        for r in 0..MR {
            for c in 0..8 {
                assert!((acc_s[r][c] - want[r][c]).abs() <= 1e-4 * want[r][c].abs().max(1.0));
            }
        }
        #[cfg(target_arch = "x86_64")]
        if super::avx2_available() {
            let mut b16 = vec![0.0f32; kc * NR_MAX];
            for l in 0..kc {
                for c in 0..8 {
                    b16[l * NR_MAX + c] = b8[l * 8 + c];
                }
            }
            let mut acc_v: Acc = [[0.0; NR_MAX]; MR];
            // SAFETY: avx2 checked above; lengths satisfy the contract.
            unsafe { micro_avx2(kc, &a, &b16, &mut acc_v) };
            for r in 0..MR {
                for c in 0..8 {
                    assert!(
                        (acc_v[r][c] - want[r][c]).abs() <= 1e-4 * want[r][c].abs().max(1.0),
                        "avx2 tile diverged at ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn axpy_and_dot_match_reference() {
        for n in [0, 1, 7, 8, 15, 16, 33, 100] {
            let x = seq(n);
            let mut y = seq(n);
            let y0 = y.clone();
            axpy(0.5, &x, &mut y);
            for i in 0..n {
                assert!((y[i] - (y0[i] + 0.5 * x[i])).abs() < 1e-5);
            }
            let d = dot(&x, &y0);
            let want: f32 = x.iter().zip(y0.iter()).map(|(&a, &b)| a * b).sum();
            assert!((d - want).abs() <= 1e-3 * want.abs().max(1.0), "dot n={n}: {d} vs {want}");
        }
    }
}
