//! Property-based tests of the tensor substrate: GEMM against a naive
//! oracle for arbitrary shapes/transposes, and shape algebra.

use proptest::prelude::*;
use tt_tensor::{batched_sgemm, sgemm, GemmSpec, Shape, Trans};

fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            for l in 0..k {
                c[i * n + j] += a[i * k + l] * b[l * n + j];
            }
        }
    }
    c
}

fn mat(r: usize, c: usize, seed: u64) -> Vec<f32> {
    (0..r * c).map(|i| ((i as u64 * 2654435761 + seed) % 17) as f32 - 8.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Parallel blocked GEMM equals the naive triple loop for any shape
    /// and transpose combination.
    #[test]
    fn sgemm_matches_naive(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        ta in prop::bool::ANY,
        tb in prop::bool::ANY,
        seed in 0u64..1000,
    ) {
        let a_logical = mat(m, k, seed);
        let b_logical = mat(k, n, seed + 1);
        // Store operands transposed when the flag says so.
        let a_stored = if ta {
            let mut t = vec![0.0; m * k];
            for r in 0..m { for c in 0..k { t[c * m + r] = a_logical[r * k + c]; } }
            t
        } else { a_logical.clone() };
        let b_stored = if tb {
            let mut t = vec![0.0; k * n];
            for r in 0..k { for c in 0..n { t[c * k + r] = b_logical[r * n + c]; } }
            t
        } else { b_logical.clone() };

        let spec = GemmSpec {
            m, k, n,
            ta: if ta { Trans::Yes } else { Trans::No },
            tb: if tb { Trans::Yes } else { Trans::No },
            alpha: 1.0,
            beta: 0.0,
        };
        let mut c = vec![0.0; m * n];
        sgemm(spec, &a_stored, &b_stored, &mut c);
        let want = naive(m, k, n, &a_logical, &b_logical);
        for (x, y) in c.iter().zip(want.iter()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    /// alpha/beta compose linearly.
    #[test]
    fn sgemm_alpha_beta(
        m in 1usize..8, k in 1usize..8, n in 1usize..8,
        alpha in -2.0f32..2.0, beta in -2.0f32..2.0,
        seed in 0u64..100,
    ) {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed + 7);
        let c0 = mat(m, n, seed + 13);
        let mut c = c0.clone();
        sgemm(GemmSpec::nn(m, k, n).with_alpha(alpha).with_beta(beta), &a, &b, &mut c);
        let base = naive(m, k, n, &a, &b);
        for ((got, want), prev) in c.iter().zip(base.iter()).zip(c0.iter()) {
            prop_assert!((got - (alpha * want + beta * prev)).abs() < 1e-2);
        }
    }

    /// Batched GEMM equals per-slice GEMMs.
    #[test]
    fn batched_matches_slices(
        batch in 1usize..5, m in 1usize..6, k in 1usize..6, n in 1usize..6,
        seed in 0u64..100,
    ) {
        let a = mat(batch * m, k, seed);
        let b = mat(batch * k, n, seed + 3);
        let mut c = vec![0.0; batch * m * n];
        batched_sgemm(batch, GemmSpec::nn(m, k, n), &a, &b, &mut c);
        for i in 0..batch {
            let want = naive(m, k, n, &a[i * m * k..(i + 1) * m * k], &b[i * k * n..(i + 1) * k * n]);
            for (x, y) in c[i * m * n..(i + 1) * m * n].iter().zip(want.iter()) {
                prop_assert!((x - y).abs() < 1e-2);
            }
        }
    }

    /// Shape offsets are a bijection onto 0..num_elements.
    #[test]
    fn shape_offsets_are_bijective(dims in prop::collection::vec(1usize..5, 1..4)) {
        let shape = Shape::new(dims.clone());
        let n = shape.num_elements();
        let mut seen = vec![false; n];
        let mut index = vec![0usize; dims.len()];
        loop {
            let off = shape.offset(&index);
            prop_assert!(off < n);
            prop_assert!(!seen[off], "offset {off} visited twice");
            seen[off] = true;
            // Odometer increment.
            let mut d = dims.len();
            loop {
                if d == 0 { break; }
                d -= 1;
                index[d] += 1;
                if index[d] < dims[d] { break; }
                index[d] = 0;
                if d == 0 { break; }
            }
            if index.iter().all(|&i| i == 0) { break; }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }
}
