//! Property tests for the packed-panel GEMM engine: every transpose
//! layout, random alpha/beta (including beta = 0 over NaN-poisoned C), and
//! shapes straddling the MR/NR/MC/KC/NC tile boundaries, checked against
//! the naive triple-loop reference within 1e-3 relative tolerance.

use proptest::prelude::*;
use tt_tensor::{batched_sgemm, sgemm, sgemm_serial, GemmSpec, Trans};

/// Naive `C = alpha·op(A)·op(B) + beta·C` oracle over logical (untransposed)
/// operands.
fn naive(spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32]) {
    let GemmSpec { m, k, n, alpha, beta, .. } = spec;
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[i * k + l] * b[l * n + j];
            }
            let prev = c[i * n + j];
            c[i * n + j] = alpha * acc + if beta == 0.0 { 0.0 } else { beta * prev };
        }
    }
}

fn mat(r: usize, c: usize, seed: u64) -> Vec<f32> {
    (0..r * c).map(|i| (((i as u64).wrapping_mul(2654435761) + seed) % 17) as f32 - 8.0).collect()
}

/// Store `src` (r×c row-major) transposed (c×r).
fn transpose(r: usize, c: usize, src: &[f32]) -> Vec<f32> {
    let mut t = vec![0.0; r * c];
    for i in 0..r {
        for j in 0..c {
            t[j * r + i] = src[i * c + j];
        }
    }
    t
}

fn assert_close(got: &[f32], want: &[f32]) {
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        let tol = 1e-3 * w.abs().max(1.0);
        assert!((g - w).abs() <= tol, "mismatch at {i}: got {g} want {w} (tol {tol})");
    }
}

/// Dimension strategy biased toward tile edges: tiny values, the register
/// tile sizes (MR = 4, NR = 8) ± 1, the MC = 128 macro-block edge, and the
/// decoder's m = 1 / k = 1 degenerate rows.
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..20,
        Just(1),
        Just(3),
        Just(4),
        Just(5),
        Just(7),
        Just(8),
        Just(9),
        Just(31),
        Just(127),
        Just(129),
    ]
}

/// alpha/beta strategy: the BLAS fast-path constants plus arbitrary scales.
fn scale() -> impl Strategy<Value = f32> {
    prop_oneof![Just(0.0f32), Just(1.0), Just(-1.0), Just(0.5), -2.0f32..2.0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The packed engine equals the naive oracle for every layout, any
    /// alpha/beta, and edge shapes — with beta = 0 required to overwrite a
    /// NaN-poisoned C.
    #[test]
    fn packed_gemm_matches_naive(
        m in dim(),
        k in dim(),
        n in dim(),
        ta in prop::bool::ANY,
        tb in prop::bool::ANY,
        alpha in scale(),
        beta in scale(),
        seed in 0u64..1000,
    ) {
        let a_logical = mat(m, k, seed);
        let b_logical = mat(k, n, seed + 1);
        let a_stored = if ta { transpose(m, k, &a_logical) } else { a_logical.clone() };
        let b_stored = if tb { transpose(k, n, &b_logical) } else { b_logical.clone() };

        let spec = GemmSpec {
            m, k, n,
            ta: if ta { Trans::Yes } else { Trans::No },
            tb: if tb { Trans::Yes } else { Trans::No },
            alpha, beta,
        };

        // beta = 0 must ignore prior C entirely — poison it with NaN.
        let init: Vec<f32> = if beta == 0.0 {
            vec![f32::NAN; m * n]
        } else {
            mat(m, n, seed + 2)
        };

        let mut want = init.clone();
        naive(spec, &a_logical, &b_logical, &mut want);

        let mut got = init.clone();
        sgemm(spec, &a_stored, &b_stored, &mut got);
        assert_close(&got, &want);

        let mut got_serial = init;
        sgemm_serial(spec, &a_stored, &b_stored, &mut got_serial);
        assert_close(&got_serial, &want);
    }

    /// Batched GEMM equals per-slice single GEMMs regardless of which
    /// parallelism strategy the batch/shape heuristic picks.
    #[test]
    fn batched_matches_per_slice(
        batch in 1usize..6,
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        tb in prop::bool::ANY,
        seed in 0u64..1000,
    ) {
        let spec = GemmSpec {
            m, k, n,
            ta: Trans::No,
            tb: if tb { Trans::Yes } else { Trans::No },
            alpha: 1.0,
            beta: 0.0,
        };
        let (sa, sb, sc) = (m * k, k * n, m * n);
        let a = mat(batch, sa, seed);
        let b = mat(batch, sb, seed + 1);

        let mut got = vec![f32::NAN; batch * sc];
        batched_sgemm(batch, spec, &a, &b, &mut got);

        for i in 0..batch {
            let mut want = vec![f32::NAN; sc];
            sgemm_serial(spec, &a[i * sa..(i + 1) * sa], &b[i * sb..(i + 1) * sb], &mut want);
            assert_close(&got[i * sc..(i + 1) * sc], &want);
        }
    }
}
