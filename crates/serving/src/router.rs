//! The fleet router: health-gated, length-aware dispatch over supervised
//! engine replicas, with bounded deadline-aware retries and optional
//! hedging.
//!
//! A [`Fleet`] fronts N [`SupervisedReplica`]s and owns three decisions
//! per request:
//!
//! 1. **Where** — least-estimated-work dispatch: each replica carries an
//!    atomic sum of the [`CachedCost`] estimates of its in-flight
//!    requests; the request goes to the healthy replica with the least
//!    outstanding estimated work (length-aware, exactly the signal the
//!    paper's scheduler batches on).
//! 2. **Whether** — a per-replica circuit breaker:
//!
//!    ```text
//!              error rate ≥ degrade, or p99 ≥ threshold
//!      Healthy ─────────────────────────────────────────▶ Degraded
//!         ▲  ▲                                               │
//!         │  │ window recovers                               │ error rate ≥ eject
//!         │  └───────────────────────────────────────────────┤
//!         │                                                  ▼
//!         │    probe succeeds                             Ejected ◀─┐
//!         └──────────────── HalfOpen ◀──────────────────────┘       │
//!                              │        cooldown elapses            │
//!                              └─────────────────────────────────────
//!                                probe fails (or replica hard-down)
//!    ```
//!
//!    Ejected replicas receive no traffic; after the cooldown exactly one
//!    live request is admitted as a *probe* (HalfOpen), and its outcome
//!    decides re-admission. A replica that is mid-restart or whose
//!    heartbeat is stale is hard-down: forced `Ejected` regardless of its
//!    window. Degraded replicas are only used when no healthy one exists.
//! 3. **Again?** — the [`retry`](crate::retry) layer: failures that mean
//!    "this replica, right now" ([`LiveError::Unavailable`] — a bounced
//!    or mid-restart replica) are retried on the (rebalanced) fleet with
//!    decorrelated-jitter backoff, a global retry budget, and a hard
//!    deadline gate. [`LiveError::DeadlineExceeded`] is never retried:
//!    the deadline is end-to-end, so a second attempt can only be later.
//!    Generation streams are never retried past submission — once a
//!    stream exists, re-dispatching would replay tokens.
//!
//! With `TT_HEDGE_MS` set, a tail-latency *hedge* fires for idempotent
//! `/v1/infer` dispatches: if the first attempt has not answered within
//! the hedge delay, a duplicate is dispatched (the work-estimate bias
//! naturally steers it to a different replica) and the first usable
//! answer wins.
//!
//! See `docs/ROBUSTNESS.md` § Fleet for the full semantics and the
//! `serving_fleet` bench for the measured kill-one-of-three drill.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError};

use tt_telemetry::{Counter, Gauge, Histogram, Registry, SpanContext};

use crate::cost_table::CachedCost;
use crate::deadline::Deadline;
use crate::generate::TokenEvent;
use crate::http::{GenerateHandler, InferError, InferHandler, InferReply};
use crate::live::{LiveError, LiveResponse};
use crate::retry::{fits_deadline, Backoff, RetryBudget, RetryConfig};
use crate::supervisor::{ReplicaFactory, ReplicaReport, SupervisedReplica, SupervisorConfig};

/// A replica's position in the circuit-breaker state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Full traffic.
    Healthy,
    /// Alive but impaired (error rate or latency over the degrade
    /// threshold): used only when no healthy replica exists.
    Degraded,
    /// No traffic; waiting out the cooldown.
    Ejected,
    /// Cooldown elapsed; exactly one in-flight probe decides re-admission.
    HalfOpen,
}

impl HealthState {
    /// Stable snake_case name (the `to` label on transition counters).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Ejected => "ejected",
            HealthState::HalfOpen => "half_open",
        }
    }

    /// Encoding for the `replica_health` gauge: 0 healthy, 1 degraded,
    /// 2 ejected, 3 half-open.
    pub fn gauge_value(self) -> f64 {
        match self {
            HealthState::Healthy => 0.0,
            HealthState::Degraded => 1.0,
            HealthState::Ejected => 2.0,
            HealthState::HalfOpen => 3.0,
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Rolling outcome/latency window per replica.
    pub window: usize,
    /// Outcomes required before rate-based transitions engage (a single
    /// early error must not eject a cold replica).
    pub min_samples: usize,
    /// Error rate at or above which a replica degrades.
    pub degrade_error_rate: f64,
    /// Error rate at or above which a replica ejects.
    pub eject_error_rate: f64,
    /// Windowed p99 request latency at or above which a replica degrades.
    pub degrade_latency: Duration,
    /// How long an ejected replica waits before its half-open probe.
    pub eject_cooldown: Duration,
    /// Heartbeat age past which the router treats the replica as
    /// hard-down (keep aligned with the supervisor's liveness deadline).
    pub stale_heartbeat: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window: 32,
            min_samples: 8,
            degrade_error_rate: 0.2,
            eject_error_rate: 0.5,
            degrade_latency: Duration::from_millis(500),
            eject_cooldown: Duration::from_millis(250),
            stale_heartbeat: Duration::from_millis(1500),
        }
    }
}

/// Everything a [`Fleet`] needs to start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of engine replicas.
    pub replicas: usize,
    /// Watchdog tuning, applied per replica.
    pub supervisor: SupervisorConfig,
    /// Circuit-breaker tuning, applied per replica.
    pub health: HealthConfig,
    /// Retry layer tuning.
    pub retry: RetryConfig,
    /// Hedged-dispatch delay for `/v1/infer`; `None` disables hedging.
    pub hedge: Option<Duration>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replicas: 1,
            supervisor: SupervisorConfig::default(),
            health: HealthConfig::default(),
            retry: RetryConfig::default(),
            hedge: None,
        }
    }
}

impl FleetConfig {
    /// Defaults overridden by `TT_FLEET_REPLICAS`, the supervisor's
    /// `TT_FLEET_*` knobs, the retry layer's `TT_RETRY_*` knobs, and
    /// `TT_HEDGE_MS` (0 or unset disables hedging). The router's
    /// stale-heartbeat threshold follows the supervisor's liveness
    /// deadline.
    pub fn from_env() -> Self {
        fn env<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        }
        let supervisor = SupervisorConfig::from_env();
        let health = HealthConfig {
            stale_heartbeat: supervisor.liveness_deadline,
            ..HealthConfig::default()
        };
        let hedge_ms: u64 = env("TT_HEDGE_MS", 0);
        FleetConfig {
            replicas: env("TT_FLEET_REPLICAS", 1).max(1),
            supervisor,
            health,
            retry: RetryConfig::from_env(),
            hedge: (hedge_ms > 0).then(|| Duration::from_millis(hedge_ms)),
        }
    }
}

/// One replica's breaker cell: state, outcome window, latency window.
struct HealthCell {
    state: HealthState,
    since: Instant,
    probe_inflight: bool,
    /// Rolling outcomes, `true` = error.
    errors: VecDeque<bool>,
    latencies_ns: VecDeque<u64>,
}

/// Per-replica telemetry for the breaker.
struct HealthMetrics {
    state_gauge: Arc<Gauge>,
    to_healthy: Arc<Counter>,
    to_degraded: Arc<Counter>,
    to_ejected: Arc<Counter>,
    to_half_open: Arc<Counter>,
    dispatches: Arc<Counter>,
    request_ns: Arc<Histogram>,
}

impl HealthMetrics {
    fn register(registry: &Registry, replica: usize) -> Self {
        let label = replica.to_string();
        let to = |state: HealthState| {
            registry.counter(
                "replica_health_transitions_total",
                "Circuit-breaker state transitions, by replica index and target state",
                &[("replica", label.as_str()), ("to", state.name())],
            )
        };
        HealthMetrics {
            state_gauge: registry.gauge(
                "replica_health",
                "Circuit-breaker state per replica: 0 healthy, 1 degraded, 2 ejected, 3 half-open",
                &[("replica", label.as_str())],
            ),
            to_healthy: to(HealthState::Healthy),
            to_degraded: to(HealthState::Degraded),
            to_ejected: to(HealthState::Ejected),
            to_half_open: to(HealthState::HalfOpen),
            dispatches: registry.counter(
                "fleet_dispatch_total",
                "Requests dispatched by the fleet router, by replica index",
                &[("replica", label.as_str())],
            ),
            request_ns: registry.histogram(
                "fleet_request_nanoseconds",
                "Fleet-observed request latency per dispatch, by replica index",
                &[("replica", label.as_str())],
            ),
        }
    }

    fn transition(&self, to: HealthState) {
        self.state_gauge.set(to.gauge_value());
        match to {
            HealthState::Healthy => self.to_healthy.inc(),
            HealthState::Degraded => self.to_degraded.inc(),
            HealthState::Ejected => self.to_ejected.inc(),
            HealthState::HalfOpen => self.to_half_open.inc(),
        }
    }
}

/// One replica's health tracking: the breaker cell plus the atomic
/// outstanding-work estimate the dispatcher balances on.
struct ReplicaHealth {
    cell: Mutex<HealthCell>,
    est_work_ns: AtomicU64,
    metrics: Option<HealthMetrics>,
}

impl ReplicaHealth {
    fn new(metrics: Option<HealthMetrics>) -> Self {
        ReplicaHealth {
            cell: Mutex::new(HealthCell {
                state: HealthState::Healthy,
                since: Instant::now(),
                probe_inflight: false,
                errors: VecDeque::new(),
                latencies_ns: VecDeque::new(),
            }),
            est_work_ns: AtomicU64::new(0),
            metrics: None,
        }
        .with_metrics(metrics)
    }

    fn with_metrics(mut self, metrics: Option<HealthMetrics>) -> Self {
        if let Some(m) = &metrics {
            m.state_gauge.set(HealthState::Healthy.gauge_value());
        }
        self.metrics = metrics;
        self
    }

    fn lock(&self) -> MutexGuard<'_, HealthCell> {
        self.cell.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn set_state(&self, cell: &mut HealthCell, to: HealthState) {
        if cell.state == to {
            return;
        }
        cell.state = to;
        cell.since = Instant::now();
        if let Some(m) = &self.metrics {
            m.transition(to);
        }
    }

    /// Re-evaluate the breaker and return the current state. `hard_down`
    /// (mid-restart or stale heartbeat) forces `Ejected` unconditionally.
    fn evaluate(&self, config: &HealthConfig, hard_down: bool) -> HealthState {
        let mut cell = self.lock();
        if hard_down {
            cell.probe_inflight = false;
            self.set_state(&mut cell, HealthState::Ejected);
            return HealthState::Ejected;
        }
        match cell.state {
            HealthState::Ejected => {
                if cell.since.elapsed() >= config.eject_cooldown {
                    cell.probe_inflight = false;
                    self.set_state(&mut cell, HealthState::HalfOpen);
                }
            }
            HealthState::HalfOpen => {}
            HealthState::Healthy | HealthState::Degraded => {
                if cell.errors.len() >= config.min_samples {
                    let rate = cell.errors.iter().filter(|&&e| e).count() as f64
                        / cell.errors.len() as f64;
                    if rate >= config.eject_error_rate {
                        cell.errors.clear();
                        cell.latencies_ns.clear();
                        cell.probe_inflight = false;
                        self.set_state(&mut cell, HealthState::Ejected);
                    } else if rate >= config.degrade_error_rate
                        || p99_ns(&cell.latencies_ns) >= config.degrade_latency.as_nanos() as u64
                    {
                        self.set_state(&mut cell, HealthState::Degraded);
                    } else {
                        self.set_state(&mut cell, HealthState::Healthy);
                    }
                }
            }
        }
        cell.state
    }

    /// Claim the half-open probe slot (at most one in flight).
    fn try_claim_probe(&self) -> bool {
        let mut cell = self.lock();
        if cell.state == HealthState::HalfOpen && !cell.probe_inflight {
            cell.probe_inflight = true;
            true
        } else {
            false
        }
    }

    /// Record a dispatch outcome. A probe's outcome resolves the
    /// half-open question immediately; ordinary outcomes feed the rolling
    /// windows (the next [`evaluate`](Self::evaluate) applies them).
    fn record(&self, config: &HealthConfig, error: bool, latency: Duration, was_probe: bool) {
        let mut cell = self.lock();
        if let Some(m) = &self.metrics {
            m.request_ns.record_duration(latency);
        }
        if was_probe {
            cell.probe_inflight = false;
            if cell.state == HealthState::HalfOpen {
                if error {
                    self.set_state(&mut cell, HealthState::Ejected);
                } else {
                    cell.errors.clear();
                    cell.latencies_ns.clear();
                    self.set_state(&mut cell, HealthState::Healthy);
                }
                return;
            }
        }
        cell.errors.push_back(error);
        cell.latencies_ns.push_back(latency.as_nanos() as u64);
        while cell.errors.len() > config.window {
            cell.errors.pop_front();
        }
        while cell.latencies_ns.len() > config.window {
            cell.latencies_ns.pop_front();
        }
    }
}

/// Windowed p99 (0 when the window is empty).
fn p99_ns(latencies: &VecDeque<u64>) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    let mut sorted: Vec<u64> = latencies.iter().copied().collect();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) * 99 / 100]
}

/// Fleet-wide telemetry (the per-replica families live in
/// [`HealthMetrics`]).
struct FleetMetrics {
    retries_success: Arc<Counter>,
    retries_exhausted: Arc<Counter>,
    retries_budget: Arc<Counter>,
    retries_deadline: Arc<Counter>,
    hedges_launched: Arc<Counter>,
    hedges_won: Arc<Counter>,
}

impl FleetMetrics {
    fn register(registry: &Registry) -> Self {
        let retries = |outcome: &str| {
            registry.counter(
                "fleet_retries_total",
                "Fleet retry decisions: success (a retry answered), exhausted (attempt cap), \
                 budget (retry budget refused), deadline (no budget left in the deadline)",
                &[("outcome", outcome)],
            )
        };
        let hedges = |event: &str| {
            registry.counter(
                "fleet_hedges_total",
                "Hedged dispatches: launched (hedge delay elapsed), won (hedge answered first)",
                &[("event", event)],
            )
        };
        FleetMetrics {
            retries_success: retries("success"),
            retries_exhausted: retries("exhausted"),
            retries_budget: retries("budget"),
            retries_deadline: retries("deadline"),
            hedges_launched: hedges("launched"),
            hedges_won: hedges("won"),
        }
    }
}

struct FleetInner {
    replicas: Vec<SupervisedReplica>,
    health: Vec<ReplicaHealth>,
    health_config: HealthConfig,
    retry: RetryConfig,
    budget: RetryBudget,
    hedge: Option<Duration>,
    costs: Arc<CachedCost>,
    request_seq: AtomicU64,
    metrics: Option<FleetMetrics>,
}

/// The fault-tolerant fleet front: N supervised replicas behind
/// health-gated least-estimated-work dispatch with retries and hedging.
/// Implements [`InferHandler`] and [`GenerateHandler`], so it plugs into
/// [`HttpServer`](crate::http::HttpServer) exactly where a single
/// engine's client used to. Clones share the fleet;
/// [`shutdown`](Fleet::shutdown) waits for every other clone to drop.
#[derive(Clone)]
pub struct Fleet {
    inner: Arc<FleetInner>,
}

impl Fleet {
    /// Start `config.replicas` supervised replicas from `factory` (each
    /// gets its fleet index and generation 0) and the router over them.
    /// `costs` prices dispatch estimates — use the same table the
    /// replicas schedule with. Pass a `registry` for the full
    /// `replica_health*` / `fleet_*` metric families.
    pub fn start(
        factory: ReplicaFactory,
        config: FleetConfig,
        costs: Arc<CachedCost>,
        registry: Option<&Registry>,
    ) -> Self {
        assert!(config.replicas >= 1, "a fleet needs at least one replica");
        let replicas: Vec<SupervisedReplica> = (0..config.replicas)
            .map(|id| SupervisedReplica::start(id, factory.clone(), config.supervisor, registry))
            .collect();
        let health = (0..config.replicas)
            .map(|id| ReplicaHealth::new(registry.map(|r| HealthMetrics::register(r, id))))
            .collect();
        Fleet {
            inner: Arc::new(FleetInner {
                replicas,
                health,
                health_config: config.health,
                retry: config.retry,
                budget: RetryBudget::new(config.retry.budget_ratio, config.retry.budget_cap),
                hedge: config.hedge,
                costs,
                request_seq: AtomicU64::new(0),
                metrics: registry.map(FleetMetrics::register),
            }),
        }
    }

    /// Replica count.
    pub fn len(&self) -> usize {
        self.inner.replicas.len()
    }

    /// Whether the fleet has no replicas (never true — `start` asserts).
    pub fn is_empty(&self) -> bool {
        self.inner.replicas.is_empty()
    }

    /// Current breaker state per replica (index-aligned).
    pub fn states(&self) -> Vec<HealthState> {
        self.inner
            .health
            .iter()
            .enumerate()
            .map(|(idx, h)| h.evaluate(&self.inner.health_config, self.inner.hard_down(idx)))
            .collect()
    }

    /// Watchdog restarts per replica (index-aligned).
    pub fn restarts(&self) -> Vec<u64> {
        self.inner.replicas.iter().map(|r| r.restarts()).collect()
    }

    /// Whole retry-budget tokens currently available.
    pub fn retry_budget_available(&self) -> f64 {
        self.inner.budget.available()
    }

    /// The full submission path: dispatch with health gating, hedging and
    /// the retry layer; returns the last typed error when every permitted
    /// attempt failed. Never hangs: every failure mode below this call is
    /// typed.
    pub fn infer_request(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<LiveResponse, LiveError> {
        let inner = &self.inner;
        inner.budget.deposit();
        let stream = inner.request_seq.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new(&inner.retry, stream);
        let estimate =
            Duration::from_secs_f64(inner.costs.single_request_estimate(tokens.len()).max(0.0));
        let max_attempts = inner.retry.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match inner.dispatch_hedged(tokens.clone(), trace, deadline) {
                Ok(resp) => {
                    if attempt > 1 {
                        if let Some(m) = &inner.metrics {
                            m.retries_success.inc();
                        }
                    }
                    return Ok(resp);
                }
                // The deadline is end-to-end: a retry can only answer
                // later, so surface the expiry immediately.
                Err(LiveError::DeadlineExceeded) => return Err(LiveError::DeadlineExceeded),
                Err(LiveError::Unavailable) => {
                    if attempt >= max_attempts {
                        if let Some(m) = &inner.metrics {
                            m.retries_exhausted.inc();
                        }
                        return Err(LiveError::Unavailable);
                    }
                    let sleep = backoff.next_sleep();
                    if !fits_deadline(deadline, sleep, estimate) {
                        if let Some(m) = &inner.metrics {
                            m.retries_deadline.inc();
                        }
                        return Err(LiveError::Unavailable);
                    }
                    if !inner.budget.try_withdraw() {
                        if let Some(m) = &inner.metrics {
                            m.retries_budget.inc();
                        }
                        return Err(LiveError::Unavailable);
                    }
                    std::thread::sleep(sleep);
                }
            }
        }
    }

    /// Shut every replica down (watchdogs first, then drain + join) and
    /// return their reports, index-aligned. Waits for any in-flight
    /// hedge threads to finish — bounded, because every dispatch below
    /// the fleet is bounded by the supervisor's no-hang guarantee.
    pub fn shutdown(self) -> Vec<ReplicaReport> {
        let mut inner = self.inner;
        loop {
            match Arc::try_unwrap(inner) {
                Ok(owned) => {
                    return owned.replicas.into_iter().map(|r| r.shutdown()).collect();
                }
                Err(shared) => {
                    inner = shared;
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }
}

impl FleetInner {
    /// Replica is mid-restart or its heartbeat is stale: hard-down.
    fn hard_down(&self, idx: usize) -> bool {
        let replica = &self.replicas[idx];
        replica.restarting()
            || replica.heartbeat_age().is_none_or(|age| age > self.health_config.stale_heartbeat)
    }

    /// Pick a replica: a free half-open probe slot first (the only road
    /// back from ejection), else the healthy replica with the least
    /// outstanding estimated work, else the least-loaded degraded one.
    fn pick(&self) -> Option<(usize, bool)> {
        let mut best_healthy: Option<(usize, u64)> = None;
        let mut best_degraded: Option<(usize, u64)> = None;
        for idx in 0..self.replicas.len() {
            let state = self.health[idx].evaluate(&self.health_config, self.hard_down(idx));
            let work = self.health[idx].est_work_ns.load(Ordering::Relaxed);
            match state {
                HealthState::HalfOpen => {
                    if self.health[idx].try_claim_probe() {
                        return Some((idx, true));
                    }
                }
                HealthState::Healthy => {
                    if best_healthy.is_none_or(|(_, w)| work < w) {
                        best_healthy = Some((idx, work));
                    }
                }
                HealthState::Degraded => {
                    if best_degraded.is_none_or(|(_, w)| work < w) {
                        best_degraded = Some((idx, work));
                    }
                }
                HealthState::Ejected => {}
            }
        }
        best_healthy.or(best_degraded).map(|(idx, _)| (idx, false))
    }

    /// One dispatch: pick, account the work estimate, execute, record the
    /// outcome into the breaker.
    fn dispatch_once(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<LiveResponse, LiveError> {
        let Some((idx, probe)) = self.pick() else {
            // Whole fleet ejected: fail typed; the retry layer (and its
            // backoff) is the caller's recovery path.
            return Err(LiveError::Unavailable);
        };
        let est_ns = (self.costs.single_request_estimate(tokens.len()).max(0.0) * 1e9) as u64;
        self.health[idx].est_work_ns.fetch_add(est_ns, Ordering::Relaxed);
        if let Some(m) = &self.health[idx].metrics {
            m.dispatches.inc();
        }
        let start = Instant::now();
        let result = self.replicas[idx].infer_request(tokens, trace, deadline);
        self.health[idx].est_work_ns.fetch_sub(est_ns, Ordering::Relaxed);
        // Only replica-fault errors feed the breaker: a deadline expiry
        // charges the request's budget, not the replica (sustained
        // slowness reaches the breaker through the latency window).
        let error = matches!(result, Err(LiveError::Unavailable));
        self.health[idx].record(&self.health_config, error, start.elapsed(), probe);
        result
    }

    /// [`dispatch_once`](Self::dispatch_once), with an optional hedge:
    /// when the primary has not answered within the hedge delay, dispatch
    /// a duplicate and take the first usable answer. Only the idempotent
    /// infer path comes through here — generation streams never hedge.
    fn dispatch_hedged(
        self: &Arc<Self>,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<LiveResponse, LiveError> {
        let Some(hedge_after) = self.hedge else {
            return self.dispatch_once(tokens, trace, deadline);
        };
        let (tx, rx): (_, Receiver<(u8, Result<LiveResponse, LiveError>)>) = bounded(2);
        {
            let inner = self.clone();
            let tx = tx.clone();
            let tokens = tokens.clone();
            std::thread::spawn(move || {
                let _ = tx.send((0, inner.dispatch_once(tokens, trace, deadline)));
            });
        }
        match rx.recv_timeout(hedge_after) {
            Ok((_, result)) => result,
            Err(RecvTimeoutError::Disconnected) => Err(LiveError::Unavailable),
            Err(RecvTimeoutError::Timeout) => {
                if let Some(m) = &self.metrics {
                    m.hedges_launched.inc();
                }
                {
                    let inner = self.clone();
                    std::thread::spawn(move || {
                        let _ = tx.send((1, inner.dispatch_once(tokens, trace, deadline)));
                    });
                }
                // First usable answer wins; if the first arrival is an
                // error, the second still gets its chance.
                let (who, first) = rx.recv().unwrap_or((0, Err(LiveError::Unavailable)));
                if first.is_ok() {
                    if who == 1 {
                        if let Some(m) = &self.metrics {
                            m.hedges_won.inc();
                        }
                    }
                    return first;
                }
                let (who, second) = rx.recv().unwrap_or((0, Err(LiveError::Unavailable)));
                if second.is_ok() {
                    if who == 1 {
                        if let Some(m) = &self.metrics {
                            m.hedges_won.inc();
                        }
                    }
                    second
                } else {
                    first
                }
            }
        }
    }

    /// Generation candidates in routing-preference order: healthy (least
    /// work first), then degraded. Ejected and half-open replicas carry
    /// no streams — a stream is long-lived, the wrong place for a probe.
    fn gen_candidates(&self) -> Vec<usize> {
        let mut healthy: Vec<(usize, u64)> = Vec::new();
        let mut degraded: Vec<(usize, u64)> = Vec::new();
        for idx in 0..self.replicas.len() {
            let state = self.health[idx].evaluate(&self.health_config, self.hard_down(idx));
            let work = self.health[idx].est_work_ns.load(Ordering::Relaxed);
            match state {
                HealthState::Healthy => healthy.push((idx, work)),
                HealthState::Degraded => degraded.push((idx, work)),
                _ => {}
            }
        }
        healthy.sort_by_key(|&(_, w)| w);
        degraded.sort_by_key(|&(_, w)| w);
        healthy.into_iter().chain(degraded).map(|(idx, _)| idx).collect()
    }
}

impl InferHandler for Fleet {
    fn infer(&self, tokens: Vec<u32>) -> Result<InferReply, InferError> {
        self.infer_deadline(tokens, None, None)
    }

    fn infer_traced(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
    ) -> Result<InferReply, InferError> {
        self.infer_deadline(tokens, trace, None)
    }

    fn infer_deadline(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<InferReply, InferError> {
        match self.infer_request(tokens, trace, deadline) {
            Ok(resp) => Ok(InferReply {
                cls_vector: resp.cls_vector,
                latency_ms: resp.latency.as_secs_f64() * 1e3,
                batch_size: resp.batch_size,
                padded_len: resp.padded_len,
            }),
            Err(LiveError::DeadlineExceeded) => Err(InferError::DeadlineExceeded(
                "deadline expired while the request waited in the engine queue".into(),
            )),
            Err(LiveError::Unavailable) => Err(InferError::Unavailable(
                "no fleet replica could serve the request (retries exhausted)".into(),
            )),
        }
    }
}

impl GenerateHandler for Fleet {
    /// Route a generation to a healthy replica. Only *submission*
    /// failures (the replica bounced before a stream existed) move to the
    /// next candidate — an established stream is never re-dispatched, so
    /// no token is ever replayed.
    fn generate(
        &self,
        prompt: Vec<u32>,
        max_new_tokens: usize,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<crossbeam::channel::Receiver<TokenEvent>, InferError> {
        for idx in self.inner.gen_candidates() {
            let Some(client) = self.inner.replicas[idx].gen_client() else { continue };
            match client.generate_request(prompt.clone(), max_new_tokens, trace, deadline) {
                Ok(stream) => return Ok(stream),
                Err(_) => continue,
            }
        }
        Err(InferError::Unavailable("no fleet replica could start the generation".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn quick_health() -> HealthConfig {
        HealthConfig {
            window: 8,
            min_samples: 4,
            eject_cooldown: ms(20),
            ..HealthConfig::default()
        }
    }

    #[test]
    fn breaker_walks_healthy_ejected_half_open_healthy() {
        let config = quick_health();
        let h = ReplicaHealth::new(None);
        assert_eq!(h.evaluate(&config, false), HealthState::Healthy);
        // A burst of errors ejects.
        for _ in 0..6 {
            h.record(&config, true, ms(1), false);
        }
        assert_eq!(h.evaluate(&config, false), HealthState::Ejected);
        // No probe before the cooldown.
        assert!(!h.try_claim_probe());
        std::thread::sleep(config.eject_cooldown + ms(5));
        assert_eq!(h.evaluate(&config, false), HealthState::HalfOpen);
        // Exactly one probe slot.
        assert!(h.try_claim_probe());
        assert!(!h.try_claim_probe(), "second probe refused while one is in flight");
        // Probe success re-admits with a clean window.
        h.record(&config, false, ms(1), true);
        assert_eq!(h.evaluate(&config, false), HealthState::Healthy);
    }

    #[test]
    fn failed_probe_re_ejects() {
        let config = quick_health();
        let h = ReplicaHealth::new(None);
        for _ in 0..6 {
            h.record(&config, true, ms(1), false);
        }
        assert_eq!(h.evaluate(&config, false), HealthState::Ejected);
        std::thread::sleep(config.eject_cooldown + ms(5));
        assert_eq!(h.evaluate(&config, false), HealthState::HalfOpen);
        assert!(h.try_claim_probe());
        h.record(&config, true, ms(1), true);
        assert_eq!(h.evaluate(&config, false), HealthState::Ejected, "failed probe re-ejects");
    }

    #[test]
    fn hard_down_forces_ejection_regardless_of_window() {
        let config = quick_health();
        let h = ReplicaHealth::new(None);
        for _ in 0..6 {
            h.record(&config, false, ms(1), false);
        }
        assert_eq!(h.evaluate(&config, false), HealthState::Healthy);
        assert_eq!(h.evaluate(&config, true), HealthState::Ejected, "restarting replica ejects");
    }

    #[test]
    fn moderate_error_rate_degrades_without_ejecting() {
        let config = quick_health();
        let h = ReplicaHealth::new(None);
        // 2 errors in 8: above degrade (0.2), below eject (0.5).
        for i in 0..8 {
            h.record(&config, i < 2, ms(1), false);
        }
        assert_eq!(h.evaluate(&config, false), HealthState::Degraded);
        // A clean window recovers without the eject/probe cycle.
        for _ in 0..8 {
            h.record(&config, false, ms(1), false);
        }
        assert_eq!(h.evaluate(&config, false), HealthState::Healthy);
    }

    #[test]
    fn latency_p99_over_threshold_degrades() {
        let config = quick_health();
        let h = ReplicaHealth::new(None);
        for _ in 0..8 {
            h.record(&config, false, config.degrade_latency + ms(50), false);
        }
        assert_eq!(h.evaluate(&config, false), HealthState::Degraded);
    }

    #[test]
    fn health_state_names_and_gauge_values_are_stable() {
        for (state, name, value) in [
            (HealthState::Healthy, "healthy", 0.0),
            (HealthState::Degraded, "degraded", 1.0),
            (HealthState::Ejected, "ejected", 2.0),
            (HealthState::HalfOpen, "half_open", 3.0),
        ] {
            assert_eq!(state.name(), name);
            assert_eq!(state.gauge_value(), value);
        }
    }
}
