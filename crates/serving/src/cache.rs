//! The Clipper-style response cache (paper Fig. 2, "Resp Cache").
//!
//! "By caching the inference results in a database, the Resp Cache
//! component responds to frequent requests without evaluating the model."
//! The paper's serving measurements turn it off; it is implemented and
//! tested here for completeness, with an LRU eviction bound.

use std::collections::HashMap;

/// A bounded LRU response cache keyed by request content fingerprint.
#[derive(Debug)]
pub struct ResponseCache {
    capacity: usize,
    /// key → (response token, recency stamp)
    map: HashMap<u64, (u64, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl ResponseCache {
    /// A cache holding at most `capacity` responses.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ResponseCache { capacity, map: HashMap::new(), clock: 0, hits: 0, misses: 0 }
    }

    /// Look up a response; updates recency and hit statistics.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        self.clock += 1;
        match self.map.get_mut(&key) {
            Some((resp, stamp)) => {
                *stamp = self.clock;
                self.hits += 1;
                Some(*resp)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a response, evicting the least-recently-used entry when full.
    pub fn put(&mut self, key: u64, response: u64) {
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some((&lru, _)) = self.map.iter().min_by_key(|(_, (_, stamp))| *stamp) {
                self.map.remove(&lru);
            }
        }
        self.map.insert(key, (response, self.clock));
    }

    /// Hit ratio so far (0 when no lookups yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put() {
        let mut c = ResponseCache::new(4);
        assert_eq!(c.get(1), None);
        c.put(1, 100);
        assert_eq!(c.get(1), Some(100));
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let mut c = ResponseCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        let _ = c.get(1); // freshen 1
        c.put(3, 30); // evicts 2
        assert_eq!(c.get(1), Some(10));
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(3), Some(30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn hit_promotes_to_mru_across_successive_evictions() {
        // Regression for the promotion contract: a hit must move the entry
        // to most-recently-used, so the eviction *order* follows recency,
        // not insertion. Insert 1,2,3; hit 1 (oldest by insertion); then
        // evictions must claim 2, then 3, and only then 1.
        let mut c = ResponseCache::new(3);
        c.put(1, 10);
        c.put(2, 20);
        c.put(3, 30);
        assert_eq!(c.get(1), Some(10)); // promote the insertion-oldest entry

        c.put(4, 40); // must evict 2 (now the LRU), not 1
        assert_eq!(c.get(2), None, "2 is evicted first despite 1 being inserted earlier");
        assert_eq!(c.get(1), Some(10), "the promoted entry survives");

        // That get(1) promoted 1 again, so the next eviction claims 3.
        c.put(5, 50);
        assert_eq!(c.get(3), None, "3 goes next");
        assert_eq!(c.get(1), Some(10), "1 keeps surviving while it keeps getting hit");

        // Without an intervening hit, 4 is now oldest (5 and 1 are newer).
        c.put(6, 60);
        assert_eq!(c.get(4), None);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinserting_updates_value_without_evicting() {
        let mut c = ResponseCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(1, 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some(11));
        assert_eq!(c.get(2), Some(20));
    }
}
