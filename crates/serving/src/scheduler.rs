//! Batch schedulers — paper Algorithm 3 and every baseline it is measured
//! against.
//!
//! A scheduler partitions the requests currently in the message queue into
//! batches. Zero-padding means a batch costs
//! `cached_cost[max len in batch][count]`, so batching short requests with
//! long ones wastes compute; running everything alone wastes batching
//! gain. The DP scheduler sorts by length and finds the optimal contiguous
//! partition in O(n²) — optimal over *all* partitions, because batch cost
//! is monotone in the maximum length (an exchange argument turns any
//! optimal partition into a sorted-contiguous one; the tests check this
//! against a brute-force search over set partitions).

use std::sync::Arc;

use tt_telemetry::{Histogram, Registry, Stopwatch};

use crate::cost_table::CachedCost;
use crate::request::Request;

/// A scheduler's output: batches of indices into the queue slice it was
/// given. Every index appears in exactly one batch.
pub type Batching = Vec<Vec<usize>>;

/// A batch scheduler.
pub trait BatchScheduler: Send + Sync {
    /// Partition the queued requests into batches.
    fn schedule(&self, queue: &[Request], costs: &CachedCost) -> Batching;

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// Decorates any [`BatchScheduler`] with telemetry: per-call wall time
/// (the DP runtime the paper bounds at O(n²)), queue length, and the
/// number of batches (splits) each call produces. All series carry a
/// `scheduler=<name>` label so variants can be compared side by side.
pub struct InstrumentedScheduler {
    inner: Arc<dyn BatchScheduler>,
    schedule_ns: Arc<Histogram>,
    queue_len: Arc<Histogram>,
    splits: Arc<Histogram>,
}

impl InstrumentedScheduler {
    /// Wrap `inner`, registering its metric family in `registry`.
    pub fn new(inner: Arc<dyn BatchScheduler>, registry: &Registry) -> Self {
        let labels = [("scheduler", inner.name())];
        InstrumentedScheduler {
            schedule_ns: registry.histogram(
                "scheduler_nanoseconds",
                "Wall time of one scheduler invocation (the paper's O(n^2) DP)",
                &labels,
            ),
            queue_len: registry.histogram(
                "scheduler_queue_length",
                "Requests in the queue at each scheduler invocation",
                &labels,
            ),
            splits: registry.histogram(
                "scheduler_splits",
                "Batches produced per scheduler invocation",
                &labels,
            ),
            inner,
        }
    }
}

impl BatchScheduler for InstrumentedScheduler {
    fn schedule(&self, queue: &[Request], costs: &CachedCost) -> Batching {
        let watch = Stopwatch::start();
        let batching = self.inner.schedule(queue, costs);
        self.schedule_ns.record(watch.elapsed_nanos());
        self.queue_len.record(queue.len() as u64);
        self.splits.record(batching.len() as u64);
        batching
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Total execution time of a batching under the cost table.
pub fn batching_cost(queue: &[Request], batching: &Batching, costs: &CachedCost) -> f64 {
    batching
        .iter()
        .map(|batch| {
            let max_len = batch.iter().map(|&i| queue[i].len).max().expect("non-empty batch");
            costs.batch_cost(max_len, batch.len())
        })
        .sum()
}

// ---------------------------------------------------------------------------
// Paper Algorithm 3
// ---------------------------------------------------------------------------

/// The sequence-length-aware DP scheduler (paper Algorithm 3).
#[derive(Debug, Clone, Copy)]
pub struct DpScheduler;

impl BatchScheduler for DpScheduler {
    fn schedule(&self, queue: &[Request], costs: &CachedCost) -> Batching {
        let n = queue.len();
        if n == 0 {
            return Vec::new();
        }
        // L1: sort (indices) in increasing order of length.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| queue[i].len);
        let max_batch = costs.max_batch();

        // states[i]: minimal cost of serving the first i sorted requests;
        // start_idx[i]: start (in sorted order) of the batch that ends at
        // i-1. Bellman: states[i] = min_j states[j] + cost(len[i-1], i-j)
        // for i - j ≤ max_batch (the batch is [j, i) — requests are sorted,
        // so its max length is len[i-1]).
        let mut states = vec![f64::INFINITY; n + 1];
        let mut start_idx = vec![0usize; n + 1];
        states[0] = 0.0;
        for i in 1..=n {
            let cur_len = queue[order[i - 1]].len;
            let lo = i.saturating_sub(max_batch);
            for j in lo..i {
                let cost = states[j] + costs.batch_cost(cur_len, i - j);
                if cost < states[i] {
                    states[i] = cost;
                    start_idx[i] = j;
                }
            }
        }

        // L21–L26: backtrack into batches.
        let mut batches = Vec::new();
        let mut i = n;
        while i > 0 {
            let j = start_idx[i];
            batches.push(order[j..i].to_vec());
            i = j;
        }
        batches.reverse(); // shortest-length batch first
        batches
    }

    fn name(&self) -> &'static str {
        "Turbo-DP-Batch"
    }
}

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

/// Packs everything in the queue into single batches of up to `max_batch`
/// (queue order) — the paper's Turbo-Naive-Batch.
#[derive(Debug, Clone, Copy)]
pub struct NaiveBatchScheduler;

impl BatchScheduler for NaiveBatchScheduler {
    fn schedule(&self, queue: &[Request], costs: &CachedCost) -> Batching {
        (0..queue.len()).collect::<Vec<_>>().chunks(costs.max_batch()).map(|c| c.to_vec()).collect()
    }

    fn name(&self) -> &'static str {
        "Turbo-Naive-Batch"
    }
}

/// No batching: one request per batch (Turbo-NoBatch / PyTorch-NoBatch).
#[derive(Debug, Clone, Copy)]
pub struct NoBatchScheduler;

impl BatchScheduler for NoBatchScheduler {
    fn schedule(&self, queue: &[Request], _costs: &CachedCost) -> Batching {
        (0..queue.len()).map(|i| vec![i]).collect()
    }

    fn name(&self) -> &'static str {
        "NoBatch"
    }
}

/// TF-serving-like static batching: batches of up to `max_batch`, every
/// request padded to the model's maximum length (the scheduler itself just
/// chunks; the padding shows up in the cost, which the simulator charges
/// at `costs.max_len()`).
#[derive(Debug, Clone, Copy)]
pub struct PadToMaxScheduler;

impl BatchScheduler for PadToMaxScheduler {
    fn schedule(&self, queue: &[Request], costs: &CachedCost) -> Batching {
        NaiveBatchScheduler.schedule(queue, costs)
    }

    fn name(&self) -> &'static str {
        "TF-serving-pad"
    }
}

/// Mean completion time (from schedule start) of a batching executed in
/// the given batch order, back to back — the latency objective of
/// [`LatencyDpScheduler`].
pub fn batching_mean_completion(queue: &[Request], batching: &Batching, costs: &CachedCost) -> f64 {
    if queue.is_empty() {
        return 0.0;
    }
    let mut elapsed = 0.0;
    let mut total = 0.0;
    for batch in batching {
        let max_len = batch.iter().map(|&i| queue[i].len).max().expect("non-empty batch");
        elapsed += costs.batch_cost(max_len, batch.len());
        total += elapsed * batch.len() as f64;
    }
    total / queue.len() as f64
}

/// A latency-objective variant of paper Algorithm 3 (extension): instead of
/// minimizing total execution time (throughput-optimal), minimize the *sum
/// of completion times* of the queued requests — batches still partition
/// the sorted queue contiguously and execute shortest-group-first, but the
/// DP keeps a Pareto frontier over (total completion, elapsed) because a
/// slightly slower prefix can still win by finishing many requests early.
///
/// Exact for its objective over contiguous sorted partitions; typically
/// produces more, smaller front batches than the throughput DP, trading a
/// little utilization for mean latency.
#[derive(Debug, Clone, Copy)]
pub struct LatencyDpScheduler;

impl BatchScheduler for LatencyDpScheduler {
    fn schedule(&self, queue: &[Request], costs: &CachedCost) -> Batching {
        let n = queue.len();
        if n == 0 {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| queue[i].len);
        let max_batch = costs.max_batch();

        // Pareto state per prefix: (total_completion, elapsed, from_j,
        // parent_state_index). A state is kept iff no other state of the
        // same prefix has both lower completion and lower elapsed.
        #[derive(Clone, Copy)]
        struct St {
            wc: f64,
            elapsed: f64,
            from: usize,
            parent: usize,
        }
        let mut states: Vec<Vec<St>> = vec![Vec::new(); n + 1];
        states[0].push(St { wc: 0.0, elapsed: 0.0, from: 0, parent: 0 });

        for i in 1..=n {
            let cur_len = queue[order[i - 1]].len;
            let mut cands: Vec<St> = Vec::new();
            #[allow(clippy::needless_range_loop)] // j indexes both states and the batch width
            for j in i.saturating_sub(max_batch)..i {
                let c = costs.batch_cost(cur_len, i - j);
                for (pi, p) in states[j].iter().enumerate() {
                    let elapsed = p.elapsed + c;
                    let wc = p.wc + elapsed * (i - j) as f64;
                    cands.push(St { wc, elapsed, from: j, parent: pi });
                }
            }
            // Pareto-prune: sort by completion, keep strictly decreasing
            // elapsed.
            cands.sort_by(|a, b| {
                a.wc.partial_cmp(&b.wc)
                    .expect("finite")
                    .then(a.elapsed.partial_cmp(&b.elapsed).expect("finite"))
            });
            let mut best_elapsed = f64::INFINITY;
            let mut kept = Vec::new();
            for s in cands {
                if s.elapsed < best_elapsed - 1e-15 {
                    best_elapsed = s.elapsed;
                    kept.push(s);
                }
            }
            states[i] = kept;
        }

        // Backtrack from the minimum-completion state of the full prefix.
        let mut i = n;
        let mut si = states[n]
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.wc.partial_cmp(&b.wc).expect("finite"))
            .map(|(idx, _)| idx)
            .expect("prefix n is reachable");
        let mut batches = Vec::new();
        while i > 0 {
            let st = states[i][si];
            batches.push(order[st.from..i].to_vec());
            si = st.parent;
            i = st.from;
        }
        batches.reverse();
        batches
    }

    fn name(&self) -> &'static str {
        "Turbo-LatencyDP-Batch"
    }
}

/// Paper Algorithm 3 under a device-memory budget (extension): the paper
/// notes the memory footprint "affects the possible size of the model as
/// well as the maximum batch size of requests" — this scheduler closes that
/// loop, consulting the allocator-profiled `batch_memory` table (see
/// [`crate::cost_table::CachedCost::with_memory_profile`]) and excluding
/// any batch whose planned activation footprint exceeds the budget.
/// Single-request batches are always admitted (a request that cannot run
/// alone cannot run at all; admission control above this layer must reject
/// it).
#[derive(Debug, Clone, Copy)]
pub struct MemoryAwareDpScheduler {
    /// Activation-memory budget per batch, bytes.
    pub budget_bytes: usize,
}

impl BatchScheduler for MemoryAwareDpScheduler {
    fn schedule(&self, queue: &[Request], costs: &CachedCost) -> Batching {
        let n = queue.len();
        if n == 0 {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| queue[i].len);
        let max_batch = costs.max_batch();

        let mut states = vec![f64::INFINITY; n + 1];
        let mut start_idx = vec![0usize; n + 1];
        states[0] = 0.0;
        for i in 1..=n {
            let cur_len = queue[order[i - 1]].len;
            for j in i.saturating_sub(max_batch)..i {
                let count = i - j;
                if count > 1 && costs.batch_memory(cur_len, count) > self.budget_bytes {
                    continue;
                }
                let cost = states[j] + costs.batch_cost(cur_len, count);
                if cost < states[i] {
                    states[i] = cost;
                    start_idx[i] = j;
                }
            }
        }

        let mut batches = Vec::new();
        let mut i = n;
        while i > 0 {
            let j = start_idx[i];
            batches.push(order[j..i].to_vec());
            i = j;
        }
        batches.reverse();
        batches
    }

    fn name(&self) -> &'static str {
        "Turbo-MemDP-Batch"
    }
}

/// Total predicted joules of a batching under the cost table's energy
/// profile. Panics if the table carries none.
pub fn batching_energy(queue: &[Request], batching: &Batching, costs: &CachedCost) -> f64 {
    batching
        .iter()
        .map(|batch| {
            let max_len = batch.iter().map(|&i| queue[i].len).max().expect("non-empty batch");
            costs.batch_energy(max_len, batch.len())
        })
        .sum()
}

/// The scheduling objective the serving loop optimizes, selected by
/// `TT_SCHED_OBJECTIVE` (`latency` — the default — or `energy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedObjective {
    /// Minimize total execution time of the queue (paper Algorithm 3).
    #[default]
    Latency,
    /// Minimize predicted joules among schedules that still drain the
    /// queue within the SLO budget ([`EnergyAwareDpScheduler`]).
    Energy,
}

impl SchedObjective {
    /// Read `TT_SCHED_OBJECTIVE`; anything other than `energy`
    /// (case-insensitive) falls back to [`SchedObjective::Latency`] —
    /// serving must not fail to boot over a typo'd knob.
    pub fn from_env() -> Self {
        match std::env::var("TT_SCHED_OBJECTIVE") {
            Ok(v) if v.trim().eq_ignore_ascii_case("energy") => SchedObjective::Energy,
            _ => SchedObjective::Latency,
        }
    }

    /// Display name, matching the env spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SchedObjective::Latency => "latency",
            SchedObjective::Energy => "energy",
        }
    }
}

/// Energy-under-SLO variant of paper Algorithm 3 (extension): among
/// contiguous sorted partitions whose *total execution time* stays within
/// `slo_budget` seconds, pick the one with minimal predicted joules from
/// the table's energy profile
/// ([`crate::cost_table::CachedCost::with_energy_profile`]).
///
/// Energy and elapsed time are both additive over batches but favor
/// different splits — big batches amortize per-inference static draw
/// (fewer joules) while padding long, so the DP keeps a Pareto frontier
/// over `(energy, elapsed)` per sorted prefix, exactly like
/// [`LatencyDpScheduler`] does for its objective. The final pick filters
/// the frontier by the budget.
///
/// **Never worse than the SLO**: when no partition meets the budget (the
/// queue is simply too deep), the scheduler falls back to the
/// latency-optimal schedule of [`DpScheduler`] — the same decision the
/// default objective would have made — so enabling the energy objective
/// can never increase the best-achievable drain time. A test pins this.
#[derive(Debug, Clone, Copy)]
pub struct EnergyAwareDpScheduler {
    /// Elapsed-time budget for draining the scheduled queue, seconds.
    pub slo_budget: f64,
}

impl BatchScheduler for EnergyAwareDpScheduler {
    fn schedule(&self, queue: &[Request], costs: &CachedCost) -> Batching {
        let n = queue.len();
        if n == 0 {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| queue[i].len);
        let max_batch = costs.max_batch();

        // Pareto state per prefix: (joules, elapsed, from_j, parent).
        #[derive(Clone, Copy)]
        struct St {
            joules: f64,
            elapsed: f64,
            from: usize,
            parent: usize,
        }
        let mut states: Vec<Vec<St>> = vec![Vec::new(); n + 1];
        states[0].push(St { joules: 0.0, elapsed: 0.0, from: 0, parent: 0 });

        for i in 1..=n {
            let cur_len = queue[order[i - 1]].len;
            let mut cands: Vec<St> = Vec::new();
            #[allow(clippy::needless_range_loop)] // j indexes both states and the batch width
            for j in i.saturating_sub(max_batch)..i {
                let time = costs.batch_cost(cur_len, i - j);
                let joules = costs.batch_energy(cur_len, i - j);
                for (pi, p) in states[j].iter().enumerate() {
                    cands.push(St {
                        joules: p.joules + joules,
                        elapsed: p.elapsed + time,
                        from: j,
                        parent: pi,
                    });
                }
            }
            // Pareto-prune: sort by joules, keep strictly decreasing
            // elapsed. A state beaten on both axes can never redeem
            // itself — both objectives are additive.
            cands.sort_by(|a, b| {
                a.joules
                    .partial_cmp(&b.joules)
                    .expect("finite")
                    .then(a.elapsed.partial_cmp(&b.elapsed).expect("finite"))
            });
            let mut best_elapsed = f64::INFINITY;
            let mut kept = Vec::new();
            for s in cands {
                if s.elapsed < best_elapsed - 1e-15 {
                    best_elapsed = s.elapsed;
                    kept.push(s);
                }
            }
            states[i] = kept;
        }

        // Minimum-joules state that drains within the budget; none ⇒ the
        // queue cannot meet the SLO at all, so yield to latency-optimal.
        let Some(mut si) = states[n]
            .iter()
            .enumerate()
            .filter(|(_, s)| s.elapsed <= self.slo_budget)
            .min_by(|(_, a), (_, b)| a.joules.partial_cmp(&b.joules).expect("finite"))
            .map(|(idx, _)| idx)
        else {
            return DpScheduler.schedule(queue, costs);
        };
        let mut i = n;
        let mut batches = Vec::new();
        while i > 0 {
            let st = states[i][si];
            batches.push(order[st.from..i].to_vec());
            si = st.parent;
            i = st.from;
        }
        batches.reverse();
        batches
    }

    fn name(&self) -> &'static str {
        "Turbo-EnergyDP-Batch"
    }
}

/// Exhaustive optimal batching over *contiguous sorted* partitions —
/// exponential, test-only reference.
pub fn brute_force_contiguous(queue: &[Request], costs: &CachedCost) -> (f64, Batching) {
    let n = queue.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| queue[i].len);
    let mut best = (f64::INFINITY, Vec::new());
    let cuts = n.saturating_sub(1);
    for mask in 0..(1u32 << cuts) {
        let mut batching: Batching = Vec::new();
        let mut cur = vec![order[0]];
        for (k, &idx) in order.iter().enumerate().skip(1) {
            if mask & (1 << (k - 1)) != 0 {
                batching.push(std::mem::take(&mut cur));
            }
            cur.push(idx);
        }
        batching.push(cur);
        if batching.iter().any(|b| b.len() > costs.max_batch()) {
            continue;
        }
        let c = batching_cost(queue, &batching, costs);
        if c < best.0 {
            best = (c, batching);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(lens: &[usize]) -> Vec<Request> {
        lens.iter().enumerate().map(|(i, &l)| Request::new(i, l, 0.0)).collect()
    }

    /// A cost surface with realistic structure: fixed launch overhead per
    /// batch plus work proportional to padded tokens, sublinear in batch.
    fn table(max_batch: usize) -> CachedCost {
        CachedCost::from_fn(600, max_batch, 1, |len, b| 1.0 + 0.01 * (len * b) as f64)
    }

    #[test]
    fn instrumented_scheduler_is_transparent_and_records() {
        let registry = Registry::new();
        let costs = table(20);
        let queue = reqs(&[17, 18, 52, 63, 77]);
        let plain = DpScheduler.schedule(&queue, &costs);
        let wrapped = InstrumentedScheduler::new(Arc::new(DpScheduler), &registry);
        assert_eq!(wrapped.schedule(&queue, &costs), plain, "wrapper must not change decisions");
        assert_eq!(wrapped.name(), DpScheduler.name());
        let snap = registry.snapshot();
        let labels = [("scheduler", DpScheduler.name())];
        let ns = snap.find("scheduler_nanoseconds", &labels).unwrap();
        assert_eq!(ns.histogram.as_ref().unwrap().count(), 1);
        let splits = snap.find("scheduler_splits", &labels).unwrap();
        assert_eq!(splits.histogram.as_ref().unwrap().sum, plain.len() as u64);
        let qlen = snap.find("scheduler_queue_length", &labels).unwrap();
        assert_eq!(qlen.histogram.as_ref().unwrap().sum, 5);
    }

    #[test]
    fn paper_example_splits_into_three_batches() {
        // Paper Fig. 9: lengths {17, 18, 52, 63, 77} — a single batch of 5
        // is worse than the optimal multi-batch scheme.
        let queue = reqs(&[17, 18, 52, 63, 77]);
        let costs = table(20);
        let dp = DpScheduler.schedule(&queue, &costs);
        let dp_cost = batching_cost(&queue, &dp, &costs);
        let naive_cost =
            batching_cost(&queue, &NaiveBatchScheduler.schedule(&queue, &costs), &costs);
        let nobatch_cost =
            batching_cost(&queue, &NoBatchScheduler.schedule(&queue, &costs), &costs);
        assert!(dp_cost <= naive_cost && dp_cost <= nobatch_cost);
        assert!(dp.len() > 1, "optimal scheme batches in groups, got {dp:?}");
        assert!(dp.len() < 5, "optimal scheme is not no-batching");
    }

    #[test]
    fn dp_matches_brute_force_on_random_queues() {
        let costs = table(4);
        let lens_sets: [&[usize]; 5] = [
            &[5, 500, 6, 490],
            &[100, 100, 100, 100, 100],
            &[1, 2, 3, 4, 5, 6, 7],
            &[300],
            &[50, 60, 70, 400, 410, 420],
        ];
        for lens in lens_sets {
            let queue = reqs(lens);
            let dp = DpScheduler.schedule(&queue, &costs);
            let dp_cost = batching_cost(&queue, &dp, &costs);
            let (best, _) = brute_force_contiguous(&queue, &costs);
            assert!(
                (dp_cost - best).abs() < 1e-9,
                "DP {dp_cost} vs brute force {best} on {lens:?}"
            );
        }
    }

    #[test]
    fn dp_respects_max_batch() {
        let costs = table(2);
        let queue = reqs(&[10, 10, 10, 10, 10]);
        let dp = DpScheduler.schedule(&queue, &costs);
        assert!(dp.iter().all(|b| b.len() <= 2));
        let covered: usize = dp.iter().map(|b| b.len()).sum();
        assert_eq!(covered, 5);
    }

    #[test]
    fn every_request_is_scheduled_exactly_once() {
        let costs = table(8);
        let queue = reqs(&[9, 1, 400, 27, 27, 3, 500, 88]);
        for sched in [&DpScheduler as &dyn BatchScheduler, &NaiveBatchScheduler, &NoBatchScheduler]
        {
            let batching = sched.schedule(&queue, &costs);
            let mut seen: Vec<usize> = batching.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..queue.len()).collect::<Vec<_>>(), "{}", sched.name());
        }
    }

    #[test]
    fn uniform_lengths_batch_together() {
        // With no padding waste, batching as much as possible wins.
        let costs = table(20);
        let queue = reqs(&[64; 12]);
        let dp = DpScheduler.schedule(&queue, &costs);
        assert_eq!(dp.len(), 1, "identical lengths should form one batch: {dp:?}");
    }

    #[test]
    fn bimodal_lengths_split() {
        // Short cluster + long cluster with launch overhead favoring two
        // batches over one padded batch.
        let costs = CachedCost::from_fn(600, 20, 1, |len, b| 0.2 + 0.01 * (len * b) as f64);
        let queue = reqs(&[10, 12, 14, 500, 505, 510]);
        let dp = DpScheduler.schedule(&queue, &costs);
        assert_eq!(dp.len(), 2, "bimodal queue must split: {dp:?}");
        // The short batch is the three short requests.
        let short_batch = dp
            .iter()
            .find(|b| b.iter().all(|&i| queue[i].len < 100))
            .expect("a batch of the short requests");
        assert_eq!(short_batch.len(), 3);
    }

    #[test]
    fn empty_queue_schedules_nothing() {
        let costs = table(4);
        assert!(DpScheduler.schedule(&[], &costs).is_empty());
        assert!(NaiveBatchScheduler.schedule(&[], &costs).is_empty());
        assert!(LatencyDpScheduler.schedule(&[], &costs).is_empty());
    }

    #[test]
    fn memory_budget_caps_batch_sizes() {
        // Real BERT-base memory profile over a coarse grid.
        let rt = tt_runtime::TurboRuntime::new(tt_runtime::RuntimeConfig::turbo(
            tt_gpusim::device::DeviceKind::RTX2060,
        ));
        let bert = crate::cost_table::CachedCost::warm_up(
            &rt,
            &tt_model::bert::BertConfig::base(),
            256,
            8,
            64,
        )
        .with_memory_profile(&tt_model::bert::BertConfig::base());
        assert!(bert.has_memory_profile());
        // Footprint grows with batch and length.
        assert!(bert.batch_memory(256, 8) > bert.batch_memory(256, 1));
        assert!(bert.batch_memory(256, 4) > bert.batch_memory(64, 4));

        let queue = reqs(&[200, 210, 220, 230, 240, 250]);
        // Unlimited: one batch of 6. Tight: smaller batches.
        let unlimited = MemoryAwareDpScheduler { budget_bytes: usize::MAX }.schedule(&queue, &bert);
        let tight_budget = bert.batch_memory(256, 2); // fits pairs, not more
        let tight = MemoryAwareDpScheduler { budget_bytes: tight_budget }.schedule(&queue, &bert);
        assert!(unlimited.iter().any(|b| b.len() >= 4));
        assert!(tight.iter().all(|b| b.len() <= 2), "budget must cap batches: {tight:?}");
        // Everything is still served exactly once.
        let mut seen: Vec<usize> = tight.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..queue.len()).collect::<Vec<_>>());
    }

    #[test]
    fn memory_aware_equals_plain_dp_when_budget_is_loose() {
        let rt = tt_runtime::TurboRuntime::new(tt_runtime::RuntimeConfig::turbo(
            tt_gpusim::device::DeviceKind::RTX2060,
        ));
        let costs = crate::cost_table::CachedCost::warm_up(
            &rt,
            &tt_model::bert::BertConfig::base(),
            128,
            4,
            32,
        )
        .with_memory_profile(&tt_model::bert::BertConfig::base());
        let queue = reqs(&[30, 60, 90, 120]);
        let plain = DpScheduler.schedule(&queue, &costs);
        let mem = MemoryAwareDpScheduler { budget_bytes: usize::MAX }.schedule(&queue, &costs);
        assert_eq!(batching_cost(&queue, &plain, &costs), batching_cost(&queue, &mem, &costs));
    }

    #[test]
    fn latency_dp_matches_brute_force_completion() {
        // Exactness check: enumerate every contiguous sorted partition and
        // compare total completion times.
        let costs = CachedCost::from_fn(600, 4, 1, |len, b| 2.0 + 0.01 * (len * b) as f64);
        for lens in
            [&[5usize, 80, 300, 310][..], &[40, 45, 50, 55, 400], &[500], &[9, 9, 9, 9, 9, 9]]
        {
            let queue = reqs(lens);
            let got = batching_mean_completion(
                &queue,
                &LatencyDpScheduler.schedule(&queue, &costs),
                &costs,
            );
            // Brute force over cut masks.
            let n = queue.len();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| queue[i].len);
            let mut best = f64::INFINITY;
            for mask in 0u32..(1 << (n - 1)) {
                let mut batching: Batching = Vec::new();
                let mut cur = vec![order[0]];
                for (k, &idx) in order.iter().enumerate().skip(1) {
                    if mask & (1 << (k - 1)) != 0 {
                        batching.push(std::mem::take(&mut cur));
                    }
                    cur.push(idx);
                }
                batching.push(cur);
                if batching.iter().any(|b| b.len() > costs.max_batch()) {
                    continue;
                }
                best = best.min(batching_mean_completion(&queue, &batching, &costs));
            }
            assert!((got - best).abs() < 1e-9, "latency DP {got} vs brute {best} on {lens:?}");
        }
    }

    #[test]
    fn latency_dp_trades_throughput_for_mean_latency() {
        let costs = table(20);
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(12)
        };
        use rand::Rng;
        let lens: Vec<usize> = (0..20).map(|_| rng.random_range(5..=500)).collect();
        let queue = reqs(&lens);
        let tp = DpScheduler.schedule(&queue, &costs);
        let lat = LatencyDpScheduler.schedule(&queue, &costs);
        assert!(
            batching_mean_completion(&queue, &lat, &costs)
                <= batching_mean_completion(&queue, &tp, &costs) + 1e-12,
            "latency DP must win its own objective"
        );
        assert!(
            batching_cost(&queue, &tp, &costs) <= batching_cost(&queue, &lat, &costs) + 1e-12,
            "throughput DP must win its objective"
        );
    }

    /// The table from `table()`, with an energy surface that rewards big
    /// batches more than the cost surface does: a large per-batch static
    /// term plus per-token dynamic energy. Minimizing joules then wants
    /// fewer batches than minimizing seconds, so the objectives genuinely
    /// diverge.
    fn energy_table(max_batch: usize) -> CachedCost {
        CachedCost::from_fn(600, max_batch, 1, |len, b| 1.0 + 0.01 * (len * b) as f64)
            .with_energy_fn(|len, b| 40.0 + 0.05 * (len * b) as f64)
    }

    #[test]
    fn sched_objective_reads_env_with_latency_fallback() {
        std::env::remove_var("TT_SCHED_OBJECTIVE");
        assert_eq!(SchedObjective::from_env(), SchedObjective::Latency);
        std::env::set_var("TT_SCHED_OBJECTIVE", "Energy");
        assert_eq!(SchedObjective::from_env(), SchedObjective::Energy);
        std::env::set_var("TT_SCHED_OBJECTIVE", "frugal");
        assert_eq!(SchedObjective::from_env(), SchedObjective::Latency);
        std::env::remove_var("TT_SCHED_OBJECTIVE");
        assert_eq!(SchedObjective::Energy.as_str(), "energy");
    }

    #[test]
    fn energy_dp_matches_brute_force_under_budget() {
        // Exactness: enumerate every contiguous sorted partition; among
        // those draining within the budget, the DP must find the
        // minimum-joules one.
        let costs = energy_table(4);
        for lens in
            [&[5usize, 80, 300, 310][..], &[40, 45, 50, 55, 400], &[500], &[9, 9, 9, 9, 9, 9]]
        {
            let queue = reqs(lens);
            // A budget between the latency optimum and the single-batch
            // extreme, so the constraint actually bites.
            let opt = batching_cost(&queue, &DpScheduler.schedule(&queue, &costs), &costs);
            let budget = opt * 1.3;
            let sched = EnergyAwareDpScheduler { slo_budget: budget };
            let got = sched.schedule(&queue, &costs);
            let got_energy = batching_energy(&queue, &got, &costs);
            assert!(batching_cost(&queue, &got, &costs) <= budget + 1e-9);

            let n = queue.len();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| queue[i].len);
            let mut best = f64::INFINITY;
            for mask in 0u32..(1 << (n - 1)) {
                let mut batching: Batching = Vec::new();
                let mut cur = vec![order[0]];
                for (k, &idx) in order.iter().enumerate().skip(1) {
                    if mask & (1 << (k - 1)) != 0 {
                        batching.push(std::mem::take(&mut cur));
                    }
                    cur.push(idx);
                }
                batching.push(cur);
                if batching.iter().any(|b| b.len() > costs.max_batch()) {
                    continue;
                }
                if batching_cost(&queue, &batching, &costs) > budget {
                    continue;
                }
                best = best.min(batching_energy(&queue, &batching, &costs));
            }
            assert!(
                (got_energy - best).abs() < 1e-9,
                "energy DP {got_energy} vs brute {best} on {lens:?}"
            );
        }
    }

    #[test]
    fn energy_objective_is_never_worse_than_slo() {
        // The pinned SLO-safety property: with a feasible budget the
        // energy schedule drains within it; with an infeasible budget the
        // scheduler falls back to exactly the latency-optimal drain time.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let costs = energy_table(20);
        for _ in 0..40 {
            let n = rng.random_range(1..20);
            let lens: Vec<usize> = (0..n).map(|_| rng.random_range(5..=500)).collect();
            let queue = reqs(&lens);
            let latency_opt = batching_cost(&queue, &DpScheduler.schedule(&queue, &costs), &costs);

            let feasible = EnergyAwareDpScheduler { slo_budget: latency_opt * 1.5 };
            let b = feasible.schedule(&queue, &costs);
            assert!(
                batching_cost(&queue, &b, &costs) <= latency_opt * 1.5 + 1e-9,
                "energy schedule blew the SLO on {lens:?}"
            );

            let impossible = EnergyAwareDpScheduler { slo_budget: latency_opt * 0.5 };
            let fb = impossible.schedule(&queue, &costs);
            assert!(
                (batching_cost(&queue, &fb, &costs) - latency_opt).abs() < 1e-9,
                "infeasible budget must fall back to the latency optimum on {lens:?}"
            );
            // Every request is still served exactly once either way.
            for batching in [&b, &fb] {
                let mut seen: Vec<usize> = batching.iter().flatten().copied().collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..queue.len()).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn energy_objective_saves_joules_when_slack_allows() {
        // Given SLO slack, the energy objective must find schedules that
        // spend no more (and on diverging surfaces strictly fewer) joules
        // than the latency optimum.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let costs = energy_table(20);
        let mut strictly_better = 0usize;
        for _ in 0..40 {
            let n = rng.random_range(2..20);
            let lens: Vec<usize> = (0..n).map(|_| rng.random_range(5..=500)).collect();
            let queue = reqs(&lens);
            let lat = DpScheduler.schedule(&queue, &costs);
            let lat_time = batching_cost(&queue, &lat, &costs);
            let en = EnergyAwareDpScheduler { slo_budget: lat_time * 1.5 }.schedule(&queue, &costs);
            let (lat_j, en_j) =
                (batching_energy(&queue, &lat, &costs), batching_energy(&queue, &en, &costs));
            assert!(en_j <= lat_j + 1e-9, "energy objective lost its own objective on {lens:?}");
            if en_j < lat_j - 1e-9 {
                strictly_better += 1;
            }
        }
        assert!(
            strictly_better >= 10,
            "objectives should diverge on this surface, got {strictly_better}/40"
        );
    }

    #[test]
    fn dp_never_loses_to_baselines_on_random_workloads() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let costs = table(20);
        for _ in 0..50 {
            let n = rng.random_range(1..25);
            let lens: Vec<usize> = (0..n).map(|_| rng.random_range(5..=500)).collect();
            let queue = reqs(&lens);
            let dp_cost = batching_cost(&queue, &DpScheduler.schedule(&queue, &costs), &costs);
            for sched in [&NaiveBatchScheduler as &dyn BatchScheduler, &NoBatchScheduler] {
                let c = batching_cost(&queue, &sched.schedule(&queue, &costs), &costs);
                assert!(
                    dp_cost <= c + 1e-9,
                    "DP {dp_cost} lost to {} {c} on {lens:?}",
                    sched.name()
                );
            }
        }
    }
}
