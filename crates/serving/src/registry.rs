//! Model version management — one of the serving-framework
//! responsibilities the paper enumerates in §2.2 ("batching, caching,
//! model version management, and model ensembles").
//!
//! A [`ModelRegistry`] holds versioned entries of any model handle type,
//! supports atomic default switching (blue/green rollouts), pinned-version
//! routing, and retirement; readers never block writers beyond a brief
//! lock.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

/// A monotonically increasing model version.
pub type Version = u64;

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The requested version does not exist (never registered or retired).
    UnknownVersion(Version),
    /// Retiring the active default is refused — switch the default first.
    VersionIsDefault(Version),
    /// The registry is empty.
    Empty,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownVersion(v) => write!(f, "unknown model version {v}"),
            RegistryError::VersionIsDefault(v) => {
                write!(f, "version {v} is the active default; switch defaults before retiring")
            }
            RegistryError::Empty => write!(f, "no model versions registered"),
        }
    }
}

impl std::error::Error for RegistryError {}

struct Inner<M> {
    models: HashMap<Version, Arc<M>>,
    default: Option<Version>,
    next: Version,
}

/// A thread-safe versioned registry of model handles.
pub struct ModelRegistry<M> {
    inner: RwLock<Inner<M>>,
}

impl<M> Default for ModelRegistry<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> ModelRegistry<M> {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            inner: RwLock::new(Inner { models: HashMap::new(), default: None, next: 1 }),
        }
    }

    /// Register a new version; the first registration becomes the default.
    /// Returns the assigned version number.
    pub fn register(&self, model: M) -> Version {
        let mut inner = self.inner.write();
        let v = inner.next;
        inner.next += 1;
        inner.models.insert(v, Arc::new(model));
        if inner.default.is_none() {
            inner.default = Some(v);
        }
        v
    }

    /// The current default version.
    pub fn default_version(&self) -> Result<Version, RegistryError> {
        self.inner.read().default.ok_or(RegistryError::Empty)
    }

    /// Atomically switch the default (blue/green cutover).
    pub fn set_default(&self, v: Version) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        if !inner.models.contains_key(&v) {
            return Err(RegistryError::UnknownVersion(v));
        }
        inner.default = Some(v);
        Ok(())
    }

    /// Resolve a request: `None` routes to the default, `Some(v)` pins.
    pub fn resolve(&self, pinned: Option<Version>) -> Result<Arc<M>, RegistryError> {
        let inner = self.inner.read();
        let v = match pinned {
            Some(v) => v,
            None => inner.default.ok_or(RegistryError::Empty)?,
        };
        inner.models.get(&v).cloned().ok_or(RegistryError::UnknownVersion(v))
    }

    /// Retire a non-default version; in-flight `Arc`s stay valid.
    pub fn retire(&self, v: Version) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        if inner.default == Some(v) {
            return Err(RegistryError::VersionIsDefault(v));
        }
        inner.models.remove(&v).map(|_| ()).ok_or(RegistryError::UnknownVersion(v))
    }

    /// All live versions, ascending.
    pub fn versions(&self) -> Vec<Version> {
        let mut v: Vec<Version> = self.inner.read().models.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_registration_becomes_default() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.default_version(), Err(RegistryError::Empty));
        let v1 = reg.register("model-a");
        assert_eq!(reg.default_version(), Ok(v1));
        assert_eq!(*reg.resolve(None).unwrap(), "model-a");
    }

    #[test]
    fn blue_green_cutover() {
        let reg = ModelRegistry::new();
        let v1 = reg.register("old");
        let v2 = reg.register("new");
        assert_eq!(*reg.resolve(None).unwrap(), "old");
        reg.set_default(v2).unwrap();
        assert_eq!(*reg.resolve(None).unwrap(), "new");
        // Pinned clients still reach the old version until it's retired.
        assert_eq!(*reg.resolve(Some(v1)).unwrap(), "old");
        reg.retire(v1).unwrap();
        assert_eq!(reg.resolve(Some(v1)), Err(RegistryError::UnknownVersion(v1)));
    }

    #[test]
    fn default_cannot_be_retired() {
        let reg = ModelRegistry::new();
        let v1 = reg.register(1);
        assert_eq!(reg.retire(v1), Err(RegistryError::VersionIsDefault(v1)));
    }

    #[test]
    fn in_flight_handles_survive_retirement() {
        let reg = ModelRegistry::new();
        let _v1 = reg.register(vec![1, 2, 3]);
        let v2 = reg.register(vec![4, 5, 6]);
        let handle = reg.resolve(Some(v2)).unwrap();
        reg.set_default(v2).unwrap();
        // Retire the first version while still holding v2.
        let v1 = reg.versions()[0];
        reg.retire(v1).unwrap();
        assert_eq!(*handle, vec![4, 5, 6]);
        assert_eq!(reg.versions(), vec![v2]);
    }

    #[test]
    fn unknown_versions_error() {
        let reg: ModelRegistry<&str> = ModelRegistry::new();
        assert_eq!(reg.set_default(9), Err(RegistryError::UnknownVersion(9)));
        assert_eq!(reg.retire(9), Err(RegistryError::UnknownVersion(9)));
        reg.register("x");
        assert!(reg.resolve(Some(42)).is_err());
    }

    #[test]
    fn concurrent_readers_and_a_writer() {
        let reg = Arc::new(ModelRegistry::new());
        let v1 = reg.register(0usize);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = reg.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let m = r.resolve(None).expect("always a default");
                    assert!(*m == 0 || *m == 1);
                }
            }));
        }
        let v2 = reg.register(1usize);
        reg.set_default(v2).unwrap();
        let _ = v1;
        for h in handles {
            h.join().expect("reader thread");
        }
        assert_eq!(*reg.resolve(None).unwrap(), 1);
    }
}
