//! Requests and seeded workload generation.
//!
//! The paper's serving workload: single-inference requests (batch 1) whose
//! text lengths follow a distribution, arriving with Poisson inter-arrival
//! times. Content never matters to any experiment, so a request carries
//! only its length, arrival time and a content key for the response cache.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Unique id (assignment order).
    pub id: usize,
    /// Sequence length in tokens.
    pub len: usize,
    /// Arrival time at the message queue, seconds.
    pub arrival: f64,
    /// Content fingerprint, for the response cache (equal key ⇒ equal
    /// response).
    pub content_key: u64,
}

impl Request {
    /// A request with the given id/length/arrival and a unique content key.
    pub fn new(id: usize, len: usize, arrival: f64) -> Self {
        Request { id, len, arrival, content_key: id as u64 }
    }
}

/// Sequence-length distributions used across the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthDist {
    /// Uniform in `[lo, hi]` — the Fig. 10 BERT/ALBERT sampling (5..500).
    Uniform {
        /// Minimum length.
        lo: usize,
        /// Maximum length.
        hi: usize,
    },
    /// Normal clamped to `[lo, hi]` — the Fig. 12 serving workload
    /// ("sequence length … satisfies a normal distribution from 5 to 500").
    ClampedNormal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std: f64,
        /// Clamp minimum.
        lo: usize,
        /// Clamp maximum.
        hi: usize,
    },
    /// Every request has the same length.
    Fixed(usize),
}

impl LengthDist {
    /// Sample one length.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            LengthDist::Uniform { lo, hi } => rng.random_range(lo..=hi),
            LengthDist::ClampedNormal { mean, std, lo, hi } => {
                // Box–Muller; `rand` alone is on the approved crate list,
                // so the normal transform is inlined here.
                let u1: f64 = rng.random_range(f64::EPSILON..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let v = mean + std * z;
                (v.round() as i64).clamp(lo as i64, hi as i64) as usize
            }
            LengthDist::Fixed(n) => n,
        }
    }
}

/// A complete workload description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Mean request arrival rate (Poisson), requests/second.
    pub rate_per_sec: f64,
    /// Workload duration, seconds.
    pub duration: f64,
    /// Length distribution.
    pub lengths: LengthDist,
    /// PRNG seed — same seed, same trace.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Generate the request trace: Poisson arrivals (exponential
    /// inter-arrival times) with lengths drawn from the distribution.
    pub fn generate(&self) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let mut id = 0usize;
        loop {
            let u: f64 = rng.random_range(f64::EPSILON..1.0);
            t += -u.ln() / self.rate_per_sec;
            if t >= self.duration {
                break;
            }
            let len = self.lengths.sample(&mut rng);
            out.push(Request::new(id, len, t));
            id += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rate: f64, dist: LengthDist) -> WorkloadSpec {
        WorkloadSpec { rate_per_sec: rate, duration: 100.0, lengths: dist, seed: 42 }
    }

    #[test]
    fn poisson_rate_is_approximately_met() {
        let reqs = spec(50.0, LengthDist::Fixed(10)).generate();
        let rate = reqs.len() as f64 / 100.0;
        assert!((rate - 50.0).abs() < 5.0, "empirical rate {rate} ≈ 50");
        // Arrivals strictly increasing.
        assert!(reqs.windows(2).all(|w| w[0].arrival < w[1].arrival));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec(20.0, LengthDist::Uniform { lo: 5, hi: 500 }).generate();
        let b = spec(20.0, LengthDist::Uniform { lo: 5, hi: 500 }).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_lengths_stay_in_range() {
        let reqs = spec(100.0, LengthDist::Uniform { lo: 5, hi: 500 }).generate();
        assert!(reqs.iter().all(|r| (5..=500).contains(&r.len)));
        // Spread sanity: both halves of the range are hit.
        assert!(reqs.iter().any(|r| r.len < 250));
        assert!(reqs.iter().any(|r| r.len > 250));
    }

    #[test]
    fn clamped_normal_centers_on_mean() {
        let dist = LengthDist::ClampedNormal { mean: 128.0, std: 60.0, lo: 5, hi: 500 };
        let reqs = spec(200.0, dist).generate();
        let mean: f64 = reqs.iter().map(|r| r.len as f64).sum::<f64>() / reqs.len() as f64;
        assert!((mean - 128.0).abs() < 10.0, "empirical mean {mean}");
        assert!(reqs.iter().all(|r| (5..=500).contains(&r.len)));
    }

    #[test]
    fn ids_and_content_keys_are_unique() {
        let reqs = spec(100.0, LengthDist::Fixed(7)).generate();
        let mut keys: Vec<u64> = reqs.iter().map(|r| r.content_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), reqs.len());
    }
}
