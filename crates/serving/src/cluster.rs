//! Multi-server serving — the paper's deferred piece: "In a multi-server
//! environment, an upper-level load balancer as the one in Nexus can ensure
//! that the requests assigned to each server will not be overloaded"
//! (§5). This module supplies that layer: N simulated GPU servers, each
//! running its own hungry scheduling loop, behind a pluggable balancer.

use crate::cost_table::CachedCost;
use crate::request::Request;
use crate::scheduler::BatchScheduler;
use crate::stats::LatencyStats;

/// How arrivals are spread over the servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerPolicy {
    /// Cycle through servers regardless of state.
    RoundRobin,
    /// Send to the server with the least pending work (busy time remaining
    /// plus an estimate of its queued requests).
    LeastLoaded,
    /// Partition by length band, one band per server — keeps each server's
    /// queue homogeneous so even a naive scheduler pads little (a cheap
    /// cluster-level approximation of the DP scheduler's grouping).
    LengthBands,
}

/// Cluster simulation parameters.
pub struct ClusterConfig<'a> {
    /// Number of identical GPU servers.
    pub servers: usize,
    /// The per-server batch scheduler.
    pub scheduler: &'a dyn BatchScheduler,
    /// The dispatch policy.
    pub policy: BalancerPolicy,
}

/// Cluster simulation outcome.
#[derive(Debug)]
pub struct ClusterReport {
    /// Requests served before the cutoff.
    pub completed: usize,
    /// Responses per second over max(duration, drain time).
    pub response_throughput: f64,
    /// Latency over completed requests.
    pub latency: LatencyStats,
    /// Per-server busy time (utilization = busy / `window`).
    pub busy_time: Vec<f64>,
    /// The measurement window: max(workload duration, drain time).
    pub window: f64,
    /// Whether any server still had a backlog at cutoff.
    pub saturated: bool,
}

impl ClusterReport {
    /// Per-server utilization (`busy / window`), one entry per server.
    pub fn utilizations(&self) -> Vec<f64> {
        if self.window <= 0.0 {
            return vec![0.0; self.busy_time.len()];
        }
        self.busy_time.iter().map(|&b| b / self.window).collect()
    }

    /// Load-balance skew: max minus min per-server utilization. Zero is a
    /// perfectly even spread; large values mean the balancer is starving
    /// some replicas while others saturate.
    pub fn utilization_skew(&self) -> f64 {
        let us = self.utilizations();
        match (
            us.iter().cloned().fold(f64::INFINITY, f64::min),
            us.iter().cloned().fold(0.0f64, f64::max),
        ) {
            (min, max) if min.is_finite() => max - min,
            _ => 0.0,
        }
    }

    /// Publish this report into `registry`: one
    /// `cluster_server_utilization{policy=...,server=...}` gauge per
    /// server plus aggregate skew, throughput, and completion metrics.
    pub fn record_to(&self, registry: &tt_telemetry::Registry, policy: &str) {
        for (i, u) in self.utilizations().iter().enumerate() {
            registry
                .gauge(
                    "cluster_server_utilization",
                    "Per-server busy fraction over the measurement window",
                    &[("policy", policy), ("server", &i.to_string())],
                )
                .set(*u);
        }
        registry
            .gauge(
                "cluster_utilization_skew",
                "Max minus min per-server utilization (0 = perfectly balanced)",
                &[("policy", policy)],
            )
            .set(self.utilization_skew());
        registry
            .gauge(
                "cluster_response_throughput",
                "Responses per second over the measurement window",
                &[("policy", policy)],
            )
            .set(self.response_throughput);
        registry
            .counter(
                "cluster_completed_total",
                "Requests completed before the cutoff",
                &[("policy", policy)],
            )
            .add(self.completed as u64);
    }
}

struct Server {
    free_at: f64,
    queue: Vec<Request>,
    busy: f64,
}

/// Estimated pending work on a server: remaining busy time plus a
/// no-batching estimate of its queue.
fn pending_work(s: &Server, now: f64, costs: &CachedCost) -> f64 {
    (s.free_at - now).max(0.0) + s.queue.iter().map(|r| costs.batch_cost(r.len, 1)).sum::<f64>()
}

/// Simulate a cluster over a request trace (sorted by arrival).
pub fn simulate_cluster(
    requests: &[Request],
    costs: &CachedCost,
    config: &ClusterConfig<'_>,
    duration: f64,
) -> ClusterReport {
    assert!(config.servers >= 1, "a cluster needs at least one server");
    let cutoff = duration * 4.0;
    let mut servers: Vec<Server> = (0..config.servers)
        .map(|_| Server { free_at: 0.0, queue: Vec::new(), busy: 0.0 })
        .collect();
    let mut rr_next = 0usize;
    let mut next_arrival = 0usize;
    let mut latency = LatencyStats::new();
    let mut completed = 0usize;
    let mut last_completion = 0.0f64;

    loop {
        // Next event: an arrival, or a server becoming free with work.
        let arrival_t = requests.get(next_arrival).map(|r| r.arrival);
        // A server can begin service no earlier than both its free time
        // and its earliest queued arrival.
        let ready_time = |s: &Server| {
            let earliest = s.queue.iter().map(|r| r.arrival).fold(f64::INFINITY, f64::min);
            s.free_at.max(earliest)
        };
        let server_t = servers
            .iter()
            .filter(|s| !s.queue.is_empty())
            .map(ready_time)
            .min_by(|a, b| a.partial_cmp(b).expect("times are finite"));

        let now = match (arrival_t, server_t) {
            (Some(a), Some(s)) if a <= s => a,
            (_, Some(s)) => s,
            (Some(a), None) => a,
            (None, None) => break,
        };
        if now > cutoff {
            break;
        }

        if arrival_t == Some(now) {
            let r = requests[next_arrival];
            next_arrival += 1;
            let target = match config.policy {
                BalancerPolicy::RoundRobin => {
                    rr_next = (rr_next + 1) % servers.len();
                    rr_next
                }
                BalancerPolicy::LeastLoaded => {
                    let mut best = 0usize;
                    let mut best_w = f64::INFINITY;
                    for (i, s) in servers.iter().enumerate() {
                        let w = pending_work(s, now, costs);
                        if w < best_w {
                            best_w = w;
                            best = i;
                        }
                    }
                    best
                }
                BalancerPolicy::LengthBands => {
                    let band = costs.max_len().div_ceil(servers.len());
                    ((r.len.saturating_sub(1)) / band.max(1)).min(servers.len() - 1)
                }
            };
            servers[target].queue.push(r);
            continue;
        }

        // A server turned free with queued work: run its hungry loop.
        let si = servers
            .iter()
            .position(|s| !s.queue.is_empty() && ready_time(s) == now)
            .expect("event time came from such a server");
        let server = &mut servers[si];
        let snapshot = std::mem::take(&mut server.queue);
        let batching = config.scheduler.schedule(&snapshot, costs);
        let mut clock = now;
        for batch in &batching {
            let max_len = batch.iter().map(|&i| snapshot[i].len).max().expect("non-empty");
            let service = costs.batch_cost(max_len, batch.len());
            clock += service;
            server.busy += service;
            for &i in batch {
                latency.record(clock - snapshot[i].arrival);
                completed += 1;
                last_completion = last_completion.max(clock);
            }
        }
        server.free_at = clock;
    }

    let backlog: usize =
        servers.iter().map(|s| s.queue.len()).sum::<usize>() + (requests.len() - next_arrival);
    let window = duration.max(last_completion);
    ClusterReport {
        completed,
        response_throughput: completed as f64 / window,
        latency,
        busy_time: servers.iter().map(|s| s.busy).collect(),
        window,
        saturated: backlog > 0 || last_completion > duration * 1.25,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{LengthDist, WorkloadSpec};
    use crate::scheduler::{DpScheduler, NaiveBatchScheduler};

    fn table() -> CachedCost {
        CachedCost::from_fn(512, 20, 8, |len, b| 1.0e-3 + 8.0e-6 * (len * b) as f64)
    }

    fn trace(rate: f64) -> Vec<Request> {
        WorkloadSpec {
            rate_per_sec: rate,
            duration: 15.0,
            lengths: LengthDist::Uniform { lo: 5, hi: 500 },
            seed: 99,
        }
        .generate()
    }

    fn run(servers: usize, rate: f64, policy: BalancerPolicy) -> ClusterReport {
        simulate_cluster(
            &trace(rate),
            &table(),
            &ClusterConfig { servers, scheduler: &DpScheduler, policy },
            15.0,
        )
    }

    #[test]
    fn report_records_utilization_and_skew_metrics() {
        let r = run(4, 400.0, BalancerPolicy::LeastLoaded);
        assert_eq!(r.utilizations().len(), 4);
        assert!(r.utilizations().iter().all(|&u| (0.0..=1.0).contains(&u)));
        assert!(r.utilization_skew() >= 0.0);

        let registry = tt_telemetry::Registry::new();
        r.record_to(&registry, "least_loaded");
        let snap = registry.snapshot();
        let u0 = snap
            .find("cluster_server_utilization", &[("policy", "least_loaded"), ("server", "0")])
            .expect("server 0 gauge");
        assert!(u0.gauge.unwrap() > 0.0, "a loaded server must show utilization");
        assert!(snap.find("cluster_utilization_skew", &[("policy", "least_loaded")]).is_some());
        assert_eq!(
            snap.find("cluster_completed_total", &[("policy", "least_loaded")]).unwrap().counter,
            Some(r.completed as u64)
        );
    }

    #[test]
    fn one_server_matches_modest_load() {
        let r = run(1, 100.0, BalancerPolicy::LeastLoaded);
        assert!(!r.saturated);
        assert_eq!(r.busy_time.len(), 1);
    }

    #[test]
    fn capacity_scales_with_servers() {
        // A rate that saturates one server but not four.
        let one = run(1, 800.0, BalancerPolicy::LeastLoaded);
        let four = run(4, 800.0, BalancerPolicy::LeastLoaded);
        assert!(one.saturated, "one server must drown at 800 req/s");
        assert!(!four.saturated, "four servers must keep up");
        // Saturated throughput is measured over the drain window (the
        // single server eventually finishes the fixed trace), so compare
        // latency, where the capacity gap is unambiguous.
        assert!(
            four.latency.mean() < one.latency.mean() / 4.0,
            "four servers must slash latency: {:.3}s vs {:.3}s",
            four.latency.mean(),
            one.latency.mean()
        );
        assert!(four.response_throughput >= one.response_throughput);
    }

    #[test]
    fn least_loaded_beats_round_robin_on_latency() {
        let rr = run(3, 400.0, BalancerPolicy::RoundRobin);
        let ll = run(3, 400.0, BalancerPolicy::LeastLoaded);
        assert!(
            ll.latency.mean() <= rr.latency.mean() * 1.05,
            "least-loaded {:.4} should not lose to round-robin {:.4}",
            ll.latency.mean(),
            rr.latency.mean()
        );
    }

    #[test]
    fn length_bands_help_a_naive_scheduler() {
        // With a naive per-server scheduler, homogeneous queues (length
        // bands) waste less padding than mixed queues (round robin).
        let cfg_mixed = ClusterConfig {
            servers: 4,
            scheduler: &NaiveBatchScheduler,
            policy: BalancerPolicy::RoundRobin,
        };
        let cfg_banded = ClusterConfig {
            servers: 4,
            scheduler: &NaiveBatchScheduler,
            policy: BalancerPolicy::LengthBands,
        };
        let t = trace(1500.0);
        let costs = table();
        let mixed = simulate_cluster(&t, &costs, &cfg_mixed, 15.0);
        let banded = simulate_cluster(&t, &costs, &cfg_banded, 15.0);
        assert!(
            banded.response_throughput > mixed.response_throughput,
            "banded {:.1} must beat mixed {:.1}",
            banded.response_throughput,
            mixed.response_throughput
        );
    }

    #[test]
    fn all_work_is_accounted() {
        let r = run(2, 150.0, BalancerPolicy::RoundRobin);
        assert_eq!(r.completed, trace(150.0).len());
        assert!(r.busy_time.iter().all(|&b| b > 0.0), "both servers worked");
    }

    #[test]
    fn empty_trace_reports_zero() {
        let costs = table();
        let r = simulate_cluster(
            &[],
            &costs,
            &ClusterConfig {
                servers: 2,
                scheduler: &DpScheduler,
                policy: BalancerPolicy::RoundRobin,
            },
            1.0,
        );
        assert_eq!(r.completed, 0);
        assert!(!r.saturated);
    }
}
