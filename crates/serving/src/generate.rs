//! Iteration-level (continuous) batching for generative decoding.
//!
//! The [`live`](crate::live) engine batches at *request* granularity: a
//! batch is formed, executed once, and every member completes together.
//! Generative decoding makes that shape pathological — a 5-token answer
//! would wait for the 200-token answer sharing its batch. This engine
//! reschedules at **token boundaries** instead, the Orca/vLLM idiom:
//!
//! 1. each engine iteration runs one decode step for every active
//!    sequence;
//! 2. waiting prompts are admitted between iterations under a *page-budget*
//!    check against the paged KV arena (plus the PR 5 deadline machinery:
//!    a prompt whose prefill cannot fit its deadline — estimated from the
//!    [`CachedCost`] table — is expired with a typed event, never run);
//! 3. sequences that finish (EOS, length cap, deadline expiry, page
//!    exhaustion) are retired *in the same iteration*, their pages going
//!    back to the free list before the next admission check.
//!
//! Tokens are streamed: every generated token is delivered through a
//! per-request channel as a [`TokenEvent`], and every stream ends with a
//! terminal [`TokenEvent::Done`] carrying a [`FinishReason`] — including
//! on deadline expiry and mid-decode page exhaustion, so a client never
//! hangs on a retired sequence.

use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};

use tt_model::gpt::Gpt;
use tt_runtime::decode::{DecodeConfig, DecodeEnergyModel, GenerativeRuntime};
use tt_telemetry::{AttrValue, Counter, Gauge, Histogram, Registry, SpanContext, Tracer};

use crate::cost_table::CachedCost;
use crate::deadline::Deadline;

/// Engine shape, overridable from the environment (`TT_GEN_*` for the
/// scheduler, `TT_KV_*` for the arena via [`DecodeConfig::from_env`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Arena sizing (page slots, page count).
    pub kv: DecodeConfig,
    /// Maximum sequences decoded per iteration (`TT_GEN_MAX_ACTIVE`).
    pub max_active: usize,
    /// Server-side cap on `max_new_tokens` (`TT_GEN_MAX_NEW_TOKENS`).
    pub max_new_tokens: usize,
    /// Token id that terminates generation (`TT_GEN_EOS`; generation
    /// relies on the length cap when `None`).
    pub eos_token: Option<u32>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            kv: DecodeConfig::default(),
            max_active: 8,
            max_new_tokens: 64,
            eos_token: None,
        }
    }
}

impl GenConfig {
    /// Defaults overridden by `TT_GEN_MAX_ACTIVE`, `TT_GEN_MAX_NEW_TOKENS`
    /// and `TT_GEN_EOS` when set and parseable; invalid values fall back
    /// silently, mirroring the `TT_HTTP_*` convention.
    pub fn from_env() -> Self {
        let mut cfg = GenConfig { kv: DecodeConfig::from_env(), ..GenConfig::default() };
        if let Ok(v) = std::env::var("TT_GEN_MAX_ACTIVE") {
            if let Ok(n) = v.trim().parse::<usize>() {
                cfg.max_active = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("TT_GEN_MAX_NEW_TOKENS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                cfg.max_new_tokens = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("TT_GEN_EOS") {
            if let Ok(t) = v.trim().parse::<u32>() {
                cfg.eos_token = Some(t);
            }
        }
        cfg
    }
}

/// Why a stream ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// The EOS token was generated.
    Eos,
    /// `max_new_tokens` (or the model's context limit) was reached.
    Length,
    /// The deadline expired — while waiting, or mid-generation. The
    /// sequence's pages were reclaimed the same iteration.
    Deadline,
    /// The KV arena (or the `kv_alloc_fail` chaos point) refused a page
    /// mid-generation; the sequence's pages were reclaimed.
    OutOfPages,
    /// The request could never run (prompt longer than the arena or the
    /// model's context window).
    Rejected,
}

impl FinishReason {
    /// Wire label, as emitted in the terminal streaming event.
    pub fn as_str(&self) -> &'static str {
        match self {
            FinishReason::Eos => "eos",
            FinishReason::Length => "length",
            FinishReason::Deadline => "deadline",
            FinishReason::OutOfPages => "out_of_pages",
            FinishReason::Rejected => "rejected",
        }
    }

    /// Whether the stream ended without completing normally (the HTTP
    /// layer marks these terminal events as errors).
    pub fn is_error(&self) -> bool {
        matches!(self, FinishReason::Deadline | FinishReason::OutOfPages | FinishReason::Rejected)
    }
}

/// One event on a generation stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenEvent {
    /// The `index`-th generated token (0-based; index 0 is the
    /// time-to-first-token moment).
    Token {
        /// 0-based position among generated tokens.
        index: usize,
        /// The token id.
        token: u32,
    },
    /// Terminal event: the stream is complete, no further events follow.
    Done {
        /// Why generation stopped.
        finish: FinishReason,
        /// Tokens generated before stopping.
        tokens: usize,
    },
}

/// Why a submission was not accepted at all (no stream was created).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenError {
    /// The engine thread is gone.
    Unavailable,
}

struct GenJob {
    prompt: Vec<u32>,
    max_new_tokens: usize,
    submitted: Instant,
    deadline: Option<Deadline>,
    trace: Option<SpanContext>,
    events: Sender<TokenEvent>,
}

/// A sequence currently holding arena pages and decoding one token per
/// iteration.
struct ActiveSeq {
    seq: tt_alloc::KvSeq,
    events: Sender<TokenEvent>,
    deadline: Option<Deadline>,
    trace: Option<SpanContext>,
    prompt_len: usize,
    last_token: u32,
    generated: usize,
    max_new: usize,
}

/// Decode-path metric family (satellite: `decode_tokens_total`, `ttft_ms`,
/// `batch_active_seqs`; the `kv_*` gauges come from the arena itself via
/// [`GenerativeRuntime::instrument`]).
#[derive(Debug, Clone)]
struct GenMetrics {
    decode_tokens: Arc<Counter>,
    ttft_ms: Arc<Histogram>,
    batch_active: Arc<Histogram>,
    requests: Arc<Counter>,
    iterations: Arc<Counter>,
    waiting_depth: Arc<Gauge>,
    deadline_admit: Arc<Counter>,
    deadline_decode: Arc<Counter>,
}

impl GenMetrics {
    fn register(registry: &Registry) -> Self {
        GenMetrics {
            decode_tokens: registry.counter(
                "decode_tokens_total",
                "Tokens generated by the continuous-batching decode engine",
                &[],
            ),
            ttft_ms: registry.histogram(
                "ttft_ms",
                "Time-to-first-token per generation request, milliseconds",
                &[],
            ),
            batch_active: registry.histogram(
                "batch_active_seqs",
                "Active sequences per engine iteration",
                &[],
            ),
            requests: registry.counter(
                "gen_requests_total",
                "Generation requests accepted by the engine",
                &[],
            ),
            iterations: registry.counter(
                "gen_iterations_total",
                "Continuous-batching engine iterations executed",
                &[],
            ),
            waiting_depth: registry.gauge(
                "gen_waiting_depth",
                "Prompts waiting for page-budget admission",
                &[],
            ),
            deadline_admit: registry.counter(
                "deadline_exceeded_total",
                "Requests dropped because their deadline expired, by stage boundary",
                &[("stage", "gen_admit")],
            ),
            deadline_decode: registry.counter(
                "deadline_exceeded_total",
                "Requests dropped because their deadline expired, by stage boundary",
                &[("stage", "gen_decode")],
            ),
        }
    }
}

/// Handle for submitting generation requests to a running [`GenEngine`].
#[derive(Clone)]
pub struct GenClient {
    tx: Sender<GenJob>,
}

impl GenClient {
    /// Submit a prompt; returns the event stream. Tokens arrive as the
    /// engine generates them; the stream always ends with
    /// [`TokenEvent::Done`].
    pub fn generate(
        &self,
        prompt: Vec<u32>,
        max_new_tokens: usize,
    ) -> Result<Receiver<TokenEvent>, GenError> {
        self.generate_request(prompt, max_new_tokens, None, None)
    }

    /// [`generate`](Self::generate) with a sampled trace context and an
    /// end-to-end deadline. Expiry — in the waiting queue or
    /// mid-generation — ends the stream with a terminal
    /// [`FinishReason::Deadline`] event; the stream never hangs.
    pub fn generate_request(
        &self,
        prompt: Vec<u32>,
        max_new_tokens: usize,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<Receiver<TokenEvent>, GenError> {
        let (events_tx, events_rx) = unbounded();
        self.tx
            .send(GenJob {
                prompt,
                max_new_tokens,
                submitted: Instant::now(),
                deadline,
                trace,
                events: events_tx,
            })
            .map_err(|_| GenError::Unavailable)?;
        Ok(events_rx)
    }

    /// Collect one stream to completion: the generated tokens and the
    /// finish reason. Convenience for tests and benches.
    pub fn collect(rx: &Receiver<TokenEvent>) -> (Vec<u32>, Option<FinishReason>) {
        let mut tokens = Vec::new();
        let mut finish = None;
        for ev in rx.iter() {
            match ev {
                TokenEvent::Token { token, .. } => tokens.push(token),
                TokenEvent::Done { finish: f, .. } => {
                    finish = Some(f);
                    break;
                }
            }
        }
        (tokens, finish)
    }
}

/// End-of-life accounting returned by [`GenEngine::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenSummary {
    /// Streams that received a terminal event.
    pub completed: usize,
    /// Arena pages still held at exit — must be zero (leak check).
    pub pages_leaked: usize,
    /// Largest per-iteration active-sequence count observed.
    pub max_active_observed: usize,
}

/// The running continuous-batching engine: owns the decode thread (and
/// through it the model + paged arena).
pub struct GenEngine {
    client: Option<GenClient>,
    handle: Option<JoinHandle<GenSummary>>,
}

impl GenEngine {
    /// Start an engine decoding `model` with the given scheduler shape and
    /// cost table (prefill feasibility against deadlines, exactly as the
    /// batch engine uses it).
    pub fn start(model: Gpt, config: GenConfig, costs: Arc<CachedCost>) -> Self {
        Self::start_inner(model, config, costs, None, Tracer::disabled())
    }

    /// [`start`](Self::start), reporting the decode metric family
    /// (`decode_tokens_total`, `ttft_ms`, `batch_active_seqs`, `kv_*`
    /// gauges, step timings) into `registry`.
    pub fn start_instrumented(
        model: Gpt,
        config: GenConfig,
        costs: Arc<CachedCost>,
        registry: &Registry,
    ) -> Self {
        Self::start_traced(model, config, costs, registry, Tracer::disabled())
    }

    /// [`start_instrumented`](Self::start_instrumented), additionally
    /// recording per-request prefill and per-iteration decode spans for
    /// jobs that arrive with a span context.
    pub fn start_traced(
        model: Gpt,
        config: GenConfig,
        costs: Arc<CachedCost>,
        registry: &Registry,
        tracer: Tracer,
    ) -> Self {
        start_engine(model, config, costs, Some(registry), tracer)
    }

    fn start_inner(
        model: Gpt,
        config: GenConfig,
        costs: Arc<CachedCost>,
        metrics: Option<GenMetrics>,
        tracer: Tracer,
    ) -> Self {
        let mut rt = GenerativeRuntime::new(model, config.kv);
        let (tx, rx): (Sender<GenJob>, Receiver<GenJob>) = unbounded();
        let handle = std::thread::Builder::new()
            .name("tt-gen-engine".into())
            .spawn(move || engine_loop(rx, &mut rt, &config, &costs, metrics.as_ref(), &tracer))
            .expect("spawning the generation engine thread");
        GenEngine { client: Some(GenClient { tx }), handle: Some(handle) }
    }

    /// A client handle (cheaply cloneable, usable from many threads).
    pub fn client(&self) -> GenClient {
        self.client.as_ref().expect("engine not shut down").clone()
    }

    /// Shut down: stop accepting jobs, finish every active sequence, join
    /// the thread.
    pub fn shutdown(mut self) -> GenSummary {
        self.client.take();
        let handle = self.handle.take().expect("shutdown runs once");
        handle.join().expect("generation engine thread exits cleanly")
    }

    /// Dismantle into raw parts for a caller that manages teardown itself
    /// (the fleet supervisor): dropping every clone of the client ends the
    /// loop, and joining the handle yields the leak-checked
    /// [`GenSummary`]. The caller takes over the
    /// [`shutdown`](Self::shutdown) obligation.
    pub fn into_parts(mut self) -> GenParts {
        let client = self.client.take().expect("engine not shut down");
        let handle = self.handle.take().expect("engine not shut down");
        GenParts { client, handle }
    }
}

/// The raw pieces of a running generation engine (see
/// [`GenEngine::into_parts`]).
pub struct GenParts {
    /// Submission handle.
    pub client: GenClient,
    /// Join handle; resolves to the engine's exit summary.
    pub handle: JoinHandle<GenSummary>,
}

impl Drop for GenEngine {
    fn drop(&mut self) {
        self.client.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Start an instrumented engine whose arena gauges and step-timing
/// histograms are also registered. Split from [`GenEngine::start_traced`]
/// because the runtime must be instrumented *before* it moves into the
/// engine thread.
pub fn start_engine(
    model: Gpt,
    config: GenConfig,
    costs: Arc<CachedCost>,
    registry: Option<&Registry>,
    tracer: Tracer,
) -> GenEngine {
    start_engine_with_energy(model, config, costs, registry, tracer, None)
}

/// [`start_engine`], additionally attaching an energy model to the decode
/// runtime: prefills charge the meter's prefill phase, token steps charge
/// decode, and traced `prefill` / `decode_iter` spans carry an `energy_uj`
/// attribute. The caller keeps a clone of the meter `Arc` to feed a
/// [`tt_telemetry::ModeledPowerSource`] + sampler.
pub fn start_engine_with_energy(
    model: Gpt,
    config: GenConfig,
    costs: Arc<CachedCost>,
    registry: Option<&Registry>,
    tracer: Tracer,
    energy: Option<DecodeEnergyModel>,
) -> GenEngine {
    let mut rt = GenerativeRuntime::new(model, config.kv);
    if let Some(e) = energy {
        rt.instrument_energy(e);
    }
    let metrics = registry.map(|r| {
        rt.instrument(r);
        GenMetrics::register(r)
    });
    let (tx, rx): (Sender<GenJob>, Receiver<GenJob>) = unbounded();
    let handle = std::thread::Builder::new()
        .name("tt-gen-engine".into())
        .spawn(move || engine_loop(rx, &mut rt, &config, &costs, metrics.as_ref(), &tracer))
        .expect("spawning the generation engine thread");
    GenEngine { client: Some(GenClient { tx }), handle: Some(handle) }
}

/// Retire `active`, emitting the terminal event and freeing its pages.
fn finish_seq(
    rt: &mut GenerativeRuntime,
    active: ActiveSeq,
    finish: FinishReason,
    metrics: Option<&GenMetrics>,
) {
    let _ = rt.release(active.seq);
    if finish == FinishReason::Deadline {
        if let Some(m) = metrics {
            m.deadline_decode.inc();
        }
    }
    let _ = active.events.send(TokenEvent::Done { finish, tokens: active.generated });
}

/// The iteration loop. One pass = expire + admit + one decode step for
/// every active sequence; repeat until the submission channel closes and
/// every sequence has retired.
fn engine_loop(
    rx: Receiver<GenJob>,
    rt: &mut GenerativeRuntime,
    config: &GenConfig,
    costs: &CachedCost,
    metrics: Option<&GenMetrics>,
    tracer: &Tracer,
) -> GenSummary {
    let mut pending: VecDeque<GenJob> = VecDeque::new();
    let mut active: Vec<ActiveSeq> = Vec::new();
    let mut completed = 0usize;
    let mut max_active_observed = 0usize;
    let max_position = rt.model().config.max_position;
    let vocab_size = rt.model().config.vocab_size;

    loop {
        // Block only when fully idle; at token boundaries the drain is
        // non-blocking so decode never stalls on the channel.
        if active.is_empty() && pending.is_empty() {
            match rx.recv() {
                Ok(job) => pending.push_back(job),
                Err(_) => break,
            }
        }
        while let Ok(job) = rx.try_recv() {
            pending.push_back(job);
        }

        // Expire waiting prompts whose deadline already passed — typed
        // terminal event, never a silent drop (the PR 5 invariant).
        pending.retain(|job| {
            if job.deadline.is_some_and(|d| d.expired()) {
                if let Some(m) = metrics {
                    m.deadline_admit.inc();
                }
                let _ =
                    job.events.send(TokenEvent::Done { finish: FinishReason::Deadline, tokens: 0 });
                completed += 1;
                false
            } else {
                true
            }
        });

        // Admission at the token boundary: FIFO, bounded by `max_active`
        // and the page budget. A prompt that can *never* be served —
        // arena or context window too small, or an out-of-vocabulary id
        // that would assert inside the embedding — is rejected outright
        // rather than blocking the queue (or killing the engine thread).
        while active.len() < config.max_active {
            let Some(job) = pending.front() else { break };
            let prompt_len = job.prompt.len();
            let arena_cfg = *rt.arena().config();
            if prompt_len == 0
                || prompt_len + 1 > max_position
                || arena_cfg.pages_for(prompt_len + 1) > arena_cfg.num_pages
                || job.prompt.iter().any(|&t| t as usize >= vocab_size)
            {
                let job = pending.pop_front().expect("front exists");
                let _ =
                    job.events.send(TokenEvent::Done { finish: FinishReason::Rejected, tokens: 0 });
                completed += 1;
                continue;
            }
            // Deadline feasibility: if the prefill alone (cost-table
            // estimate) cannot fit the remaining budget, serving it late
            // helps nobody — expire it now, before it holds pages.
            if let Some(d) = job.deadline {
                let est = std::time::Duration::from_secs_f64(
                    costs.single_request_estimate(prompt_len).max(0.0),
                );
                if d.remaining().is_none_or(|rem| rem < est) {
                    let job = pending.pop_front().expect("front exists");
                    if let Some(m) = metrics {
                        m.deadline_admit.inc();
                    }
                    let _ = job
                        .events
                        .send(TokenEvent::Done { finish: FinishReason::Deadline, tokens: 0 });
                    completed += 1;
                    continue;
                }
            }
            // Page budget: head-of-line blocking is deliberate (FIFO
            // fairness); the next retirement frees pages this same loop.
            if !rt.can_admit(prompt_len) {
                break;
            }
            let job = pending.pop_front().expect("front exists");
            let seq = match rt.admit(prompt_len) {
                Ok(seq) => seq,
                Err(_) => {
                    // Raced with chaos (`kv_alloc_fail`): typed terminal
                    // event, no pages held.
                    let _ = job
                        .events
                        .send(TokenEvent::Done { finish: FinishReason::OutOfPages, tokens: 0 });
                    completed += 1;
                    continue;
                }
            };
            let prefill_start = tracer.now_ns();
            let watch = Instant::now();
            let logits = match rt.prefill(seq, &job.prompt) {
                Ok(logits) => logits,
                Err(_) => {
                    let _ = rt.release(seq);
                    let _ = job
                        .events
                        .send(TokenEvent::Done { finish: FinishReason::OutOfPages, tokens: 0 });
                    completed += 1;
                    continue;
                }
            };
            costs.observe(prompt_len, 1, watch.elapsed().as_secs_f64());
            if let Some(ctx) = job.trace {
                tracer.record_span(
                    ctx.trace,
                    Some(ctx.span),
                    "prefill",
                    prefill_start,
                    tracer.now_ns().saturating_sub(prefill_start),
                    vec![
                        ("prompt_len", AttrValue::Int(prompt_len as i64)),
                        ("energy_uj", AttrValue::Int(rt.last_energy_uj() as i64)),
                    ],
                );
            }
            // Deadline may have expired *during* the prefill: pages must
            // still come back and the stream must still terminate.
            if job.deadline.is_some_and(|d| d.expired()) {
                let _ = rt.release(seq);
                if let Some(m) = metrics {
                    m.deadline_decode.inc();
                }
                let _ =
                    job.events.send(TokenEvent::Done { finish: FinishReason::Deadline, tokens: 0 });
                completed += 1;
                continue;
            }
            let first = tt_tensor::ops::argmax(&logits).expect("non-empty vocab") as u32;
            if let Some(m) = metrics {
                m.requests.inc();
                m.ttft_ms.record((job.submitted.elapsed().as_millis() as u64).max(1));
            }
            if job.events.send(TokenEvent::Token { index: 0, token: first }).is_err() {
                // Client gone before its first token: retire silently.
                let _ = rt.release(seq);
                completed += 1;
                continue;
            }
            if let Some(m) = metrics {
                m.decode_tokens.inc();
            }
            let max_new = job.max_new_tokens.clamp(1, config.max_new_tokens);
            let seq_state = ActiveSeq {
                seq,
                events: job.events,
                deadline: job.deadline,
                trace: job.trace,
                prompt_len,
                last_token: first,
                generated: 1,
                max_new,
            };
            // The first token may already satisfy a stop condition.
            if config.eos_token == Some(first) {
                finish_seq(rt, seq_state, FinishReason::Eos, metrics);
                completed += 1;
            } else if seq_state.generated >= max_new
                || prompt_len + seq_state.generated + 1 > max_position
            {
                finish_seq(rt, seq_state, FinishReason::Length, metrics);
                completed += 1;
            } else {
                active.push(seq_state);
            }
        }

        if active.is_empty() {
            continue;
        }
        max_active_observed = max_active_observed.max(active.len());
        if let Some(m) = metrics {
            m.iterations.inc();
            m.batch_active.record(active.len() as u64);
            m.waiting_depth.set(pending.len() as f64);
        }

        // One decode step for every active sequence. `drain` + rebuild
        // keeps retirement-in-iteration trivial.
        let iter_start = tracer.now_ns();
        let mut still_active = Vec::with_capacity(active.len());
        let batch_now = active.len();
        for mut s in active.drain(..) {
            if s.deadline.is_some_and(|d| d.expired()) {
                finish_seq(rt, s, FinishReason::Deadline, metrics);
                completed += 1;
                continue;
            }
            let logits = match rt.decode_step(s.seq, s.last_token) {
                Ok(logits) => logits,
                Err(_) => {
                    finish_seq(rt, s, FinishReason::OutOfPages, metrics);
                    completed += 1;
                    continue;
                }
            };
            let token = tt_tensor::ops::argmax(&logits).expect("non-empty vocab") as u32;
            let index = s.generated;
            if s.events.send(TokenEvent::Token { index, token }).is_err() {
                // Client disconnected mid-stream: free the pages now.
                let _ = rt.release(s.seq);
                completed += 1;
                continue;
            }
            s.generated += 1;
            s.last_token = token;
            if let Some(m) = metrics {
                m.decode_tokens.inc();
            }
            if let Some(ctx) = s.trace {
                tracer.record_span(
                    ctx.trace,
                    Some(ctx.span),
                    "decode_iter",
                    iter_start,
                    tracer.now_ns().saturating_sub(iter_start),
                    vec![
                        ("index", AttrValue::Int(index as i64)),
                        ("batch_active", AttrValue::Int(batch_now as i64)),
                        ("energy_uj", AttrValue::Int(rt.last_energy_uj() as i64)),
                    ],
                );
            }
            if config.eos_token == Some(token) {
                finish_seq(rt, s, FinishReason::Eos, metrics);
                completed += 1;
            } else if s.generated >= s.max_new || s.prompt_len + s.generated + 1 > max_position {
                finish_seq(rt, s, FinishReason::Length, metrics);
                completed += 1;
            } else {
                still_active.push(s);
            }
        }
        active = still_active;
    }

    GenSummary { completed, pages_leaked: rt.arena().pages_in_use(), max_active_observed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_model::gpt::GptConfig;

    fn costs() -> Arc<CachedCost> {
        Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-4 + 1.0e-6 * (len * b) as f64))
    }

    fn config() -> GenConfig {
        GenConfig {
            kv: DecodeConfig { page_slots: 4, num_pages: 32 },
            max_active: 4,
            max_new_tokens: 16,
            eos_token: None,
        }
    }

    #[test]
    fn engine_matches_serial_greedy_generation() {
        let model = Gpt::new_random(&GptConfig::tiny(), 31);
        let expect = model.generate_greedy(&[1, 2, 3], 8);
        let eng = GenEngine::start(model, config(), costs());
        let rx = eng.client().generate(vec![1, 2, 3], 8).unwrap();
        let (tokens, finish) = GenClient::collect(&rx);
        assert_eq!(tokens, expect, "continuous batching must not change the math");
        assert_eq!(finish, Some(FinishReason::Length));
        let summary = eng.shutdown();
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.pages_leaked, 0);
    }

    #[test]
    fn concurrent_mixed_length_requests_share_iterations() {
        // On a single-core box the engine thread can win the race and
        // fully decode the first stream before the later submissions
        // land, so the concurrency assertion gets a few attempts;
        // correctness stays strict on every attempt.
        let mut max_active = 0;
        for _ in 0..3 {
            let model = Gpt::new_random(&GptConfig::tiny(), 32);
            let prompts: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![7, 8], vec![4, 9, 13, 2]];
            let wants: Vec<usize> = vec![12, 4, 8];
            let expects: Vec<Vec<u32>> =
                prompts.iter().zip(&wants).map(|(p, &n)| model.generate_greedy(p, n)).collect();
            let eng = GenEngine::start(model, config(), costs());
            let streams: Vec<_> = prompts
                .iter()
                .zip(&wants)
                .map(|(p, &n)| eng.client().generate(p.clone(), n).unwrap())
                .collect();
            for (rx, expect) in streams.iter().zip(&expects) {
                let (tokens, finish) = GenClient::collect(rx);
                assert_eq!(&tokens, expect);
                assert_eq!(finish, Some(FinishReason::Length));
            }
            let summary = eng.shutdown();
            assert_eq!(summary.completed, 3);
            assert_eq!(summary.pages_leaked, 0);
            max_active = max_active.max(summary.max_active_observed);
            if max_active >= 2 {
                return;
            }
        }
        panic!("requests never decoded in the same iterations (max active {max_active})");
    }

    #[test]
    fn eos_token_retires_a_sequence_early() {
        let model = Gpt::new_random(&GptConfig::tiny(), 33);
        let serial = model.generate_greedy(&[1, 2, 3], 16);
        // Pick the 3rd generated token as "EOS" so the engine must stop at
        // index 2 with reason Eos.
        let eos = serial[2];
        assert!(!serial[..2].contains(&eos), "test needs a first occurrence at index 2");
        let cfg = GenConfig { eos_token: Some(eos), ..config() };
        let eng = GenEngine::start(model, cfg, costs());
        let rx = eng.client().generate(vec![1, 2, 3], 16).unwrap();
        let (tokens, finish) = GenClient::collect(&rx);
        assert_eq!(tokens, serial[..3].to_vec());
        assert_eq!(finish, Some(FinishReason::Eos));
        assert_eq!(eng.shutdown().pages_leaked, 0);
    }

    #[test]
    fn expired_deadline_yields_terminal_event_not_a_hang() {
        let model = Gpt::new_random(&GptConfig::tiny(), 34);
        let eng = GenEngine::start(model, config(), costs());
        let dead = Deadline::at(Instant::now());
        let rx = eng.client().generate_request(vec![1, 2, 3], 8, None, Some(dead)).unwrap();
        let (tokens, finish) = GenClient::collect(&rx);
        assert!(tokens.is_empty());
        assert_eq!(finish, Some(FinishReason::Deadline));
        // A live deadline sails through.
        let live = Deadline::within(std::time::Duration::from_secs(30));
        let rx = eng.client().generate_request(vec![1, 2, 3], 4, None, Some(live)).unwrap();
        let (tokens, finish) = GenClient::collect(&rx);
        assert_eq!(tokens.len(), 4);
        assert_eq!(finish, Some(FinishReason::Length));
        assert_eq!(eng.shutdown().pages_leaked, 0);
    }

    #[test]
    fn oversized_prompt_is_rejected_with_a_typed_event() {
        let model = Gpt::new_random(&GptConfig::tiny(), 35);
        // Arena of 2 pages × 2 slots can never hold a 6-token prompt.
        let cfg = GenConfig { kv: DecodeConfig { page_slots: 2, num_pages: 2 }, ..config() };
        let eng = GenEngine::start(model, cfg, costs());
        let rx = eng.client().generate(vec![1, 2, 3, 4, 5, 6], 4).unwrap();
        let (tokens, finish) = GenClient::collect(&rx);
        assert!(tokens.is_empty());
        assert_eq!(finish, Some(FinishReason::Rejected));
        // A prompt that fits still serves.
        let rx = eng.client().generate(vec![1, 2], 1).unwrap();
        let (tokens, finish) = GenClient::collect(&rx);
        assert_eq!(tokens.len(), 1);
        assert_eq!(finish, Some(FinishReason::Length));
        assert_eq!(eng.shutdown().pages_leaked, 0);
    }

    #[test]
    fn out_of_vocabulary_prompt_is_rejected_not_an_engine_panic() {
        // Regression: an id past the embedding table used to assert inside
        // the engine thread, killing generation for every later request.
        let model = Gpt::new_random(&GptConfig::tiny(), 38);
        let vocab = model.config.vocab_size as u32;
        let eng = GenEngine::start(model, config(), costs());
        let rx = eng.client().generate(vec![1, vocab, 2], 4).unwrap();
        let (tokens, finish) = GenClient::collect(&rx);
        assert!(tokens.is_empty());
        assert_eq!(finish, Some(FinishReason::Rejected));
        // The engine thread survived and still serves.
        let rx = eng.client().generate(vec![1, 2], 2).unwrap();
        let (tokens, finish) = GenClient::collect(&rx);
        assert_eq!(tokens.len(), 2);
        assert_eq!(finish, Some(FinishReason::Length));
        assert_eq!(eng.shutdown().pages_leaked, 0);
    }

    #[test]
    fn page_exhaustion_mid_decode_frees_pages_and_engine_keeps_serving() {
        let model = Gpt::new_random(&GptConfig::tiny(), 36);
        // 3 pages × 2 slots: a 4-token prompt reserves 2 pages, decode
        // claims the 3rd at token 7, and the 4th allocation fails.
        let cfg = GenConfig {
            kv: DecodeConfig { page_slots: 2, num_pages: 3 },
            max_active: 1,
            ..config()
        };
        let eng = GenEngine::start(model, cfg, costs());
        let rx = eng.client().generate(vec![1, 2, 3, 4], 16).unwrap();
        let (tokens, finish) = GenClient::collect(&rx);
        assert_eq!(finish, Some(FinishReason::OutOfPages));
        assert!(!tokens.is_empty(), "some tokens streamed before exhaustion");
        // The freed pages serve the next request.
        let rx = eng.client().generate(vec![1, 2], 2).unwrap();
        let (tokens, finish) = GenClient::collect(&rx);
        assert_eq!(tokens.len(), 2);
        assert_eq!(finish, Some(FinishReason::Length));
        assert_eq!(eng.shutdown().pages_leaked, 0);
    }

    #[test]
    fn energy_instrumented_engine_charges_both_phases() {
        use tt_telemetry::{EnergyMeter, EnergyPhase};
        let registry = Registry::new();
        let meter = Arc::new(EnergyMeter::new());
        let model = Gpt::new_random(&GptConfig::tiny(), 39);
        let eng = start_engine_with_energy(
            model,
            config(),
            costs(),
            Some(&registry),
            Tracer::disabled(),
            Some(DecodeEnergyModel {
                device: tt_gpusim::device::DeviceKind::V100.config(),
                profile: tt_runtime::RuntimeKind::Turbo.profile(),
                meter: Arc::clone(&meter),
            }),
        );
        let rx = eng.client().generate(vec![1, 2, 3], 6).unwrap();
        let (tokens, _) = GenClient::collect(&rx);
        assert_eq!(tokens.len(), 6);
        assert_eq!(eng.shutdown().pages_leaked, 0);
        let prefill = meter.phase_uj(EnergyPhase::Prefill);
        let decode = meter.phase_uj(EnergyPhase::Decode);
        assert!(prefill > 0, "prompt prefill must charge the prefill phase");
        assert!(decode > 0, "token steps must charge the decode phase");
        assert_eq!(meter.busy_uj(), prefill + decode);
    }

    #[test]
    fn instrumented_engine_reports_decode_metric_family() {
        let registry = Registry::new();
        let model = Gpt::new_random(&GptConfig::tiny(), 37);
        let eng = start_engine(model, config(), costs(), Some(&registry), Tracer::disabled());
        let rx = eng.client().generate(vec![1, 2, 3], 6).unwrap();
        let (tokens, _) = GenClient::collect(&rx);
        assert_eq!(tokens.len(), 6);
        let summary = eng.shutdown();
        assert_eq!(summary.pages_leaked, 0);

        let snap = registry.snapshot();
        assert_eq!(snap.find("decode_tokens_total", &[]).unwrap().counter, Some(6));
        let ttft = snap.find("ttft_ms", &[]).unwrap().histogram.clone().unwrap();
        assert_eq!(ttft.count(), 1, "one TTFT observation per request");
        let batch = snap.find("batch_active_seqs", &[]).unwrap().histogram.clone().unwrap();
        assert!(batch.count() > 0);
        assert_eq!(snap.find("kv_pages_in_use", &[]).unwrap().gauge, Some(0.0));
        assert!(snap.find("kv_page_occupancy", &[]).is_some());
        assert!(snap.find("gen_requests_total", &[]).unwrap().counter.unwrap() >= 1);
        assert!(snap.find("prefill_us", &[]).is_some());
        assert!(snap.find("decode_step_us", &[]).is_some());
    }
}
