//! # tt-serving — the TurboTransformers serving framework
//!
//! Paper §5 and Figure 2: requests arrive at a message queue, pass a
//! response cache, are grouped by a batch scheduler and executed by the
//! runtime. The framework's contribution is the **sequence-length-aware
//! batch scheduler** (paper Algorithm 3): a dynamic program over a profiled
//! `cached_cost[seq_len][batch_size]` table that splits the queued
//! variable-length requests into contiguous (in sorted length order)
//! batches minimizing total execution time — trading zero-padding waste
//! against batching gain.
//!
//! Modules:
//!
//! - [`request`] — requests and seeded workload generators (Poisson
//!   arrivals; uniform / clamped-normal / translation length
//!   distributions);
//! - [`cost_table`] — the `cached_cost` table and its warm-up construction
//!   from a `tt-runtime` cost model;
//! - [`deadline`] — one definition of "expired": wall-clock [`Deadline`]s
//!   for the live path plus the sim-clock expiry/EDF/lazy-trigger helpers
//!   shared by the simulators;
//! - [`scheduler`] — DP (Algorithm 3), naive single-batch, no-batch and
//!   pad-to-max (TF-serving-like) schedulers, plus a brute-force optimum
//!   used by tests;
//! - [`simulator`] — discrete-event simulation of the serving loop with
//!   *hungry* and *lazy* trigger strategies, producing the throughput and
//!   latency numbers of paper Figure 12 / Table 4;
//! - [`live`] — a real threaded serving engine (crossbeam channels + real
//!   numerics) proving the Fig. 2 architecture end to end;
//! - [`generate`] — iteration-level (continuous) batching for generative
//!   decoding: one decode step per active sequence per iteration over the
//!   paged KV arena, page-budget admission, per-token event streams;
//! - [`http`] — the network front-end: a dependency-free HTTP/1.1 server
//!   (worker pool over `TcpListener`) routing `POST /v1/infer` into the
//!   live engine, with `GET /metrics` Prometheus scraping, bounded-queue
//!   backpressure (`429` shedding), request-size limits and graceful
//!   drain-then-join shutdown;
//! - [`cluster`] — a multi-GPU extension: N simulated servers behind a
//!   load balancer (the "upper-level load balancer as the one in Nexus"
//!   the paper defers to);
//! - [`cache`] — the Clipper-style response cache (disabled in the paper's
//!   measurements, implemented for completeness);
//! - [`registry`] — model version management (the remaining §2.2 serving
//!   functionality): versioned handles, blue/green default switching;
//! - [`multi_model`] — several model classes sharing one GPU
//!   (earliest-deadline-first, the Nexus scenario) with SLO load shedding;
//! - [`supervisor`] — watchdog-supervised engine replicas: heartbeat
//!   liveness, panic/stall detection, leak-checked teardown and restart
//!   under a fresh generation stamp, typed errors for in-flight work;
//! - [`router`] — the [`Fleet`] front: health-gated (circuit breaker)
//!   least-estimated-work dispatch over supervised replicas, with
//!   optional hedged dispatch for the idempotent infer path;
//! - [`retry`] — bounded deadline-aware retries: seeded
//!   decorrelated-jitter backoff plus a global retry budget;
//! - [`stats`] — latency accumulation (avg / min / max / percentiles).

#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod cost_table;
pub mod deadline;
pub mod generate;
pub mod http;
pub mod live;
pub mod multi_model;
pub mod registry;
pub mod request;
pub mod retry;
pub mod router;
pub mod scheduler;
pub mod simulator;
pub mod stats;
pub mod supervisor;

pub use cost_table::CachedCost;
pub use deadline::Deadline;
pub use generate::{FinishReason, GenClient, GenConfig, GenEngine, TokenEvent};
pub use http::{
    GenerateHandler, HttpConfig, HttpServer, InferError, InferHandler, InferReply, VocabGuard,
};
pub use request::{LengthDist, Request, WorkloadSpec};
pub use retry::{Backoff, RetryBudget, RetryConfig};
pub use router::{Fleet, FleetConfig, HealthConfig, HealthState};
pub use scheduler::{
    BatchScheduler, DpScheduler, EnergyAwareDpScheduler, InstrumentedScheduler, LatencyDpScheduler,
    MemoryAwareDpScheduler, NaiveBatchScheduler, NoBatchScheduler, PadToMaxScheduler,
    SchedObjective,
};
pub use simulator::{simulate, ServingConfig, ServingReport, Trigger};
pub use supervisor::{
    ReplicaFactory, ReplicaParts, ReplicaReport, SupervisedReplica, SupervisorConfig,
};
