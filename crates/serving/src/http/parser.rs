//! A minimal, incremental HTTP/1.1 request parser.
//!
//! The server reads from a `TcpStream` into a growing byte buffer and asks
//! this module, after every read, whether a complete request is available.
//! The parser therefore has to be *restartable*: given a prefix of a
//! request it answers [`ParseOutcome::Incomplete`] and is called again with
//! more bytes, and given more than one pipelined request it consumes
//! exactly the first one (the `consumed` count lets the connection loop
//! keep the tail for the next iteration).
//!
//! Scope is deliberately small — request line, headers, and a
//! `Content-Length`-delimited body. No chunked transfer encoding, no
//! multiline header folding, no trailers: nothing the serving front-end
//! needs to speak with `curl`, Prometheus scrapers and load generators.
//! Anything outside that subset is rejected explicitly (`Invalid`), never
//! silently mis-framed.

/// Upper bound on the request line + headers, before the body starts.
///
/// A peer that sends more head bytes than this without a blank line is
/// either broken or hostile; the connection loop answers `400` and hangs
/// up instead of buffering without bound.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target exactly as sent (path plus optional query string).
    pub target: String,
    /// Protocol version token, e.g. `HTTP/1.1`.
    pub version: String,
    /// Header `(name, value)` pairs; names are lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The request path with any `?query` suffix removed.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The raw query string (everything after the first `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// The value of query parameter `name` — `Some("")` for a bare
    /// `?flag` with no `=value`, `None` when the parameter is absent.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }

    /// Whether the peer asked to close the connection after this exchange
    /// (explicit `Connection: close`, or HTTP/1.0 without keep-alive).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => self.version == "HTTP/1.0",
        }
    }
}

/// Result of attempting to parse one request from the front of `buf`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The buffer holds a prefix of a valid request — read more bytes and
    /// try again.
    Incomplete,
    /// One full request parsed; `consumed` bytes of the buffer belong to
    /// it (the remainder is the start of the next pipelined request).
    Complete {
        /// The parsed request.
        request: HttpRequest,
        /// How many buffer bytes the request occupied.
        consumed: usize,
    },
    /// The bytes can never become a valid request — answer `400`, close.
    Invalid(&'static str),
    /// The declared `Content-Length` exceeds the server's body limit —
    /// answer `413` without reading the body.
    BodyTooLarge {
        /// The offending declared length.
        declared: usize,
    },
}

/// Try to parse one request from the front of `buf`.
///
/// `max_body` is the server's request-size limit; a `Content-Length`
/// above it short-circuits to [`ParseOutcome::BodyTooLarge`] *before* the
/// body arrives, so oversized uploads are refused at header time.
pub fn parse_request(buf: &[u8], max_body: usize) -> ParseOutcome {
    let head_end = match find_head_end(buf) {
        Some(end) => end,
        None if buf.len() > MAX_HEAD_BYTES => {
            return ParseOutcome::Invalid("request head exceeds 16 KiB")
        }
        None => return ParseOutcome::Incomplete,
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return ParseOutcome::Invalid("request head is not UTF-8"),
    };

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => return ParseOutcome::Invalid("malformed request line"),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return ParseOutcome::Invalid("unsupported HTTP version");
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return ParseOutcome::Invalid("malformed header line");
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => match v.parse::<usize>() {
            Ok(len) => len,
            Err(_) => return ParseOutcome::Invalid("unparseable Content-Length"),
        },
        None => 0,
    };
    if headers.iter().any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return ParseOutcome::Invalid("chunked transfer encoding is not supported");
    }
    if content_length > max_body {
        return ParseOutcome::BodyTooLarge { declared: content_length };
    }

    let body_start = head_end + 4; // past "\r\n\r\n"
    let consumed = body_start + content_length;
    if buf.len() < consumed {
        return ParseOutcome::Incomplete;
    }
    ParseOutcome::Complete {
        request: HttpRequest {
            method: method.to_string(),
            target: target.to_string(),
            version: version.to_string(),
            headers,
            body: buf[body_start..consumed].to_vec(),
        },
        consumed,
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (HttpRequest, usize) {
        match parse_request(buf, 1024) {
            ParseOutcome::Complete { request, consumed } => (request, consumed),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let (req, consumed) = complete(raw);
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_post_with_content_length_body() {
        let raw = b"POST /v1/infer HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 15\r\n\r\n{\"tokens\":[1,2]}"; // 16 bytes available, 15 declared
        let (req, consumed) = complete(raw);
        assert_eq!(req.body, b"{\"tokens\":[1,2]".to_vec());
        assert_eq!(consumed, raw.len() - 1, "one pipelined byte remains");
    }

    #[test]
    fn truncated_head_is_incomplete_at_every_prefix() {
        let raw = b"POST /v1/infer HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        for cut in 0..raw.len() {
            let outcome = parse_request(&raw[..cut], 1024);
            assert_eq!(
                outcome,
                ParseOutcome::Incomplete,
                "prefix of {cut} bytes must be Incomplete, got {outcome:?}"
            );
        }
        assert!(matches!(parse_request(raw, 1024), ParseOutcome::Complete { .. }));
    }

    #[test]
    fn body_split_across_reads_completes_once_length_arrives() {
        let head = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\n";
        let mut buf = head.to_vec();
        buf.extend_from_slice(b"ab");
        assert_eq!(parse_request(&buf, 1024), ParseOutcome::Incomplete);
        buf.extend_from_slice(b"cd");
        let (req, consumed) = complete(&buf);
        assert_eq!(req.body, b"abcd".to_vec());
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn pipelined_requests_consume_exactly_one_at_a_time() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GET /metrics HTTP/1.1\r\n\r\n");
        buf.extend_from_slice(b"POST /v1/infer HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi");
        buf.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");

        let (first, used) = complete(&buf);
        assert_eq!(first.path(), "/metrics");
        let rest = &buf[used..];
        let (second, used2) = complete(rest);
        assert_eq!(second.path(), "/v1/infer");
        assert_eq!(second.body, b"hi".to_vec());
        let (third, used3) = complete(&rest[used2..]);
        assert_eq!(third.path(), "/healthz");
        assert_eq!(used + used2 + used3, buf.len());
    }

    #[test]
    fn oversized_declared_body_is_rejected_at_header_time() {
        let raw = b"POST /v1/infer HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        assert_eq!(parse_request(raw, 1024), ParseOutcome::BodyTooLarge { declared: 9999 });
    }

    #[test]
    fn malformed_inputs_are_invalid_not_incomplete() {
        let cases: &[&[u8]] = &[
            b"NOT A REQUEST\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET relative-path HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ];
        for case in cases {
            assert!(
                matches!(parse_request(case, 1024), ParseOutcome::Invalid(_)),
                "expected Invalid for {:?}",
                String::from_utf8_lossy(case)
            );
        }
    }

    #[test]
    fn unterminated_giant_head_is_invalid() {
        let buf = vec![b'A'; MAX_HEAD_BYTES + 1];
        assert!(matches!(parse_request(&buf, 1024), ParseOutcome::Invalid(_)));
    }

    #[test]
    fn query_parameters_are_split_off_the_path() {
        let (req, _) =
            complete(b"POST /v1/infer?trace=1&x=y HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        assert_eq!(req.path(), "/v1/infer");
        assert_eq!(req.query(), Some("trace=1&x=y"));
        assert_eq!(req.query_param("trace"), Some("1"));
        assert_eq!(req.query_param("x"), Some("y"));
        assert_eq!(req.query_param("missing"), None);

        let (req, _) = complete(b"GET /healthz?probe HTTP/1.1\r\n\r\n");
        assert_eq!(req.query_param("probe"), Some(""), "bare flag parses to empty value");
        let (req, _) = complete(b"GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(req.query(), None);
    }

    #[test]
    fn connection_close_semantics() {
        let (req, _) = complete(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(req.wants_close());
        let (req, _) = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(req.wants_close(), "HTTP/1.0 defaults to close");
        let (req, _) = complete(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!req.wants_close());
    }
}
