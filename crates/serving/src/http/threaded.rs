//! The threaded connection driver: a blocking acceptor plus a worker
//! pool, one connection per worker thread at a time.
//!
//! This is the portable fallback behind `TT_HTTP_DRIVER=threads` (and the
//! default off Linux) and the baseline the epoll reactor is benchmarked
//! against in `BENCH_http.json`. Its capacity model is thread-bound:
//! `workers` connections are served concurrently, further accepted
//! connections wait in the bounded hand-off queue, and beyond that the
//! acceptor blocks and clients queue in the kernel backlog. See
//! `docs/NETWORKING.md` for the comparison with the reactor's
//! readiness-driven model.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use tt_telemetry::Stopwatch;

use super::parser::{parse_request, HttpRequest, ParseOutcome};
use super::{
    classify_first_event, dispatch, error_body, event_json, generate_admit, render_head,
    route_label, ConnectionDriver, GenAdmission, Response, ServerShared, StreamState, WorkQueue,
};
use crate::generate::TokenEvent;

/// The running threaded driver: acceptor thread, worker pool, and the
/// bounded connection hand-off queue between them.
pub(super) struct ThreadedDriver {
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadedDriver {
    pub(super) fn start(
        listener: TcpListener,
        addr: SocketAddr,
        shared: &Arc<ServerShared>,
    ) -> ThreadedDriver {
        let queue = Arc::new(WorkQueue::new(shared.config.pending_connections));
        let mut workers = Vec::new();
        for i in 0..shared.config.workers {
            let shared = shared.clone();
            let queue = queue.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tt-http-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &queue))
                    .expect("spawning http worker"),
            );
        }
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("tt-http-acceptor".into())
                .spawn(move || acceptor_loop(listener, &shared, &queue))
                .expect("spawning http acceptor")
        };
        ThreadedDriver { addr, acceptor: Some(acceptor), workers }
    }
}

impl ConnectionDriver for ThreadedDriver {
    fn begin_shutdown(&self) {
        // Wake the acceptor out of its blocking accept() with a throwaway
        // connection; it re-checks the flag before handing the stream off.
        let _ = TcpStream::connect(self.addr);
    }

    fn join(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn acceptor_loop(listener: TcpListener, shared: &ServerShared, queue: &WorkQueue<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => continue, // transient accept error; keep serving
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            break; // the wake-up connection (or a late client) is dropped
        }
        let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
        let _ = stream.set_nodelay(true);
        queue.push(stream);
    }
    queue.close();
}

fn worker_loop(shared: &Arc<ServerShared>, queue: &WorkQueue<TcpStream>) {
    while let Some(stream) = queue.pop() {
        // Chaos injection point: a stalled worker (GC pause, noisy
        // neighbor, page fault storm). The connection it holds waits; the
        // rest of the pool keeps serving, and admission control sees the
        // resulting queue-wait inflation.
        if let Some(stall) = tt_chaos::worker_stall() {
            std::thread::sleep(stall);
        }
        shared.metrics.active_connections.add(1.0);
        handle_connection(stream, shared);
        shared.metrics.active_connections.add(-1.0);
    }
}

/// Serve one connection: keep-alive loop of read → parse → route → write.
/// Pipelined requests already in the buffer are answered without another
/// read. Returns when the peer closes, asks to close, errors, times out,
/// or the server is draining for shutdown.
fn handle_connection(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        // Answer everything parseable before reading again.
        loop {
            match parse_request(&buf, shared.config.max_body_bytes) {
                ParseOutcome::Complete { request, consumed } => {
                    buf.drain(..consumed);
                    let draining = shared.shutting_down.load(Ordering::SeqCst);
                    if request.method == "POST" && request.path() == "/v1/generate" {
                        // Streaming route: it owns the socket for the whole
                        // generation (chunked transfer encoding, one chunk
                        // per token event) and always ends the connection.
                        generate_route(&mut stream, &request, shared);
                        return;
                    }
                    let close = request.wants_close() || draining;
                    let served = respond(&mut stream, &request, close, shared);
                    if !served || close {
                        return;
                    }
                }
                ParseOutcome::Incomplete => break,
                ParseOutcome::Invalid(reason) => {
                    let _ = write_error(&mut stream, 400, reason, &[]);
                    shared.metrics.observe("other", 400, 0);
                    return;
                }
                ParseOutcome::BodyTooLarge { declared } => {
                    let reason = format!(
                        "body of {declared} bytes exceeds the {}-byte limit",
                        shared.config.max_body_bytes
                    );
                    let _ = write_error(&mut stream, 413, &reason, &[]);
                    shared.metrics.observe("other", 413, 0);
                    return;
                }
            }
        }

        // Chaos injection point: the peer pauses mid-send (the reactor
        // parks the connection on its timer wheel instead of sleeping).
        if let Some(stall) = tt_chaos::conn_stall() {
            std::thread::sleep(stall);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if !buf.is_empty() {
                    // Mid-request stall: tell the peer before hanging up.
                    let _ = write_error(&mut stream, 408, "timed out mid-request", &[]);
                    shared.metrics.observe("other", 408, 0);
                }
                return;
            }
            Err(_) => return,
        }
    }
}

/// Route one request and write the response. Returns `false` if the write
/// failed (connection is dead).
fn respond(
    stream: &mut TcpStream,
    request: &HttpRequest,
    close: bool,
    shared: &ServerShared,
) -> bool {
    let route = route_label(request.path(), &request.method);
    let watch = Stopwatch::start();
    let (status, content_type, body, extra) = dispatch(request, shared);
    let ok = write_response(stream, status, &content_type, &body, &extra, close).is_ok();
    shared.metrics.observe(route, status, watch.elapsed_nanos());
    ok
}

/// Write one HTTP/1.1 chunk (`<hex len>\r\n<data>\r\n`) and flush, so the
/// client sees the token *now*, not when a buffer fills. The `conn_drop`
/// chaos point applies per chunk — a stream can die mid-generation, and
/// the engine must reclaim the sequence's pages when it does.
fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> std::io::Result<()> {
    if tt_chaos::conn_drop() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "tt-chaos: injected connection drop mid-stream",
        ));
    }
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// `POST /v1/generate`: the streaming route under the threaded driver.
/// Owns the socket — and this worker thread — for the stream's whole
/// lifetime: admission errors are written as complete responses; an
/// admitted generation answers `200` with `Transfer-Encoding: chunked`
/// and one NDJSON event per token, ending with a terminal `done` chunk.
/// The engine's own terminal events (deadline expiry mid-generation,
/// page exhaustion) ride the stream — the client never hangs on a
/// retired sequence.
fn generate_route(stream: &mut TcpStream, request: &HttpRequest, shared: &Arc<ServerShared>) {
    let route = "/v1/generate";
    let watch = Stopwatch::start();
    let plain = |stream: &mut TcpStream, resp: Response| {
        let (status, ct, body, extra) = resp;
        let _ = write_response(stream, status, &ct, &body, &extra, true);
        shared.metrics.observe(route, status, watch.elapsed_nanos());
    };

    let StreamState { events, slot: _slot, mut span, trace } = match generate_admit(request, shared)
    {
        GenAdmission::Plain(resp) => return plain(stream, resp),
        GenAdmission::Stream(state) => state,
    };

    // Wait for the first event before committing to a status line: an
    // engine-side rejection that produced no tokens becomes a proper HTTP
    // error instead of a 200 stream that instantly fails.
    let first = match events.recv() {
        Ok(ev) => ev,
        Err(_) => return plain(stream, error_body(503, "generation engine is gone")),
    };
    if let Some(resp) = classify_first_event(&first, shared) {
        return plain(stream, resp);
    }

    // Commit: 200 + chunked; streams always close the connection.
    let head = super::stream_head(trace);
    if tt_chaos::conn_drop() {
        let cut = head.len().min(16);
        let _ = stream.write_all(&head.as_bytes()[..cut]);
        let _ = stream.shutdown(std::net::Shutdown::Both);
        shared.metrics.observe(route, 200, watch.elapsed_nanos());
        return;
    }
    if stream.write_all(head.as_bytes()).and_then(|()| stream.flush()).is_err() {
        shared.metrics.observe(route, 200, watch.elapsed_nanos());
        return;
    }

    let mut current = first;
    loop {
        if write_chunk(stream, event_json(&current).as_bytes()).is_err() {
            // Dead peer (or injected drop): dropping `events` below makes
            // the engine's next send fail, retiring the sequence and
            // freeing its pages the same iteration.
            break;
        }
        if let TokenEvent::Done { finish, .. } = &current {
            if let Some(span) = span.as_mut() {
                span.attr_str("finish", finish.as_str());
            }
            let _ = stream.write_all(b"0\r\n\r\n").and_then(|()| stream.flush());
            break;
        }
        match events.recv() {
            Ok(ev) => current = ev,
            Err(_) => {
                // Engine vanished mid-stream: close the chunk framing so
                // the client sees a terminated (if incomplete) body.
                let _ = stream.write_all(b"0\r\n\r\n").and_then(|()| stream.flush());
                break;
            }
        }
    }
    shared.metrics.observe(route, 200, watch.elapsed_nanos());
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(String, String)],
    close: bool,
) -> std::io::Result<()> {
    let head = render_head(status, content_type, body.len(), extra_headers, close);
    // Chaos injection point: the peer (or a middlebox) vanishes
    // mid-response. A partial head goes out, then the socket dies — the
    // caller sees an error exactly as it would from a real broken pipe,
    // and per-request accounting must still balance.
    if tt_chaos::conn_drop() {
        let cut = head.len().min(16);
        let _ = stream.write_all(&head.as_bytes()[..cut]);
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "tt-chaos: injected connection drop mid-response",
        ));
    }
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn write_error(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
    extra_headers: &[(String, String)],
) -> std::io::Result<()> {
    let (status, ct, body, _) = error_body(status, message);
    write_response(stream, status, &ct, &body, extra_headers, true)
}
