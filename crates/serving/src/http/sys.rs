//! Thin epoll + self-pipe FFI for the reactor driver (Linux only).
//!
//! The build environment vendors every dependency, so there is no `libc`
//! crate to lean on. Instead this module declares the four glibc symbols
//! the reactor needs — `epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `pipe2` — as `extern "C"` items; the std runtime already links against
//! glibc, so no extra linkage is required. Everything is wrapped in safe
//! RAII types ([`Epoll`], [`WakePipe`]) so the reactor itself contains no
//! `unsafe`.
//!
//! Only the constants the reactor actually uses are defined, with values
//! from the Linux UAPI headers (`<sys/epoll.h>`, `<fcntl.h>`); they are
//! ABI-stable by kernel policy.

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

/// Readable (incoming bytes, or a peer FIN makes `read` return 0).
pub(super) const EPOLLIN: u32 = 0x1;
/// Writable (send buffer has room again).
pub(super) const EPOLLOUT: u32 = 0x4;
/// Error condition on the fd (e.g. an RST from the peer).
pub(super) const EPOLLERR: u32 = 0x8;
/// Full hang-up: both directions are gone.
pub(super) const EPOLLHUP: u32 = 0x10;
/// Peer shut down its write half (half-close FIN).
pub(super) const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered registration: one event per readiness *transition*.
pub(super) const EPOLLET: u32 = 1 << 31;

const EPOLL_CLOEXEC: i32 = 0x80000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const O_NONBLOCK: i32 = 0x800;
const O_CLOEXEC: i32 = 0x80000;

/// `struct epoll_event`. On x86-64 the kernel ABI packs it (no padding
/// between the 32-bit mask and the 64-bit data word).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub(super) struct EpollEvent {
    /// Readiness mask (`EPOLL*` bits).
    pub(super) events: u32,
    /// Caller-owned token; the reactor stores the connection id here.
    pub(super) data: u64,
}

impl EpollEvent {
    pub(super) fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
}

/// An owned epoll instance. Closing the fd (on drop) deregisters
/// everything still attached to it.
pub(super) struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    pub(super) fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    /// Register `fd` for `events`, tagging its wakeups with `token`.
    pub(super) fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Deregister `fd`. (Closing an fd deregisters it implicitly; this is
    /// for fds that outlive their registration, like the drained listener.)
    pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
        // Pre-2.6.9 kernels require a non-null event pointer even for DEL.
        let mut ev = EpollEvent::zeroed();
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Block until readiness or `timeout` (`None` = forever), retrying
    /// `EINTR`. Returns how many entries of `events` were filled.
    pub(super) fn wait(
        &self,
        events: &mut [EpollEvent],
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let ms: i32 = match timeout {
            None => -1,
            // Round up so a 1ns timeout does not become a busy-loop 0ms poll.
            Some(d) => d.as_millis().clamp(1, i32::MAX as u128) as i32,
        };
        loop {
            let n = unsafe {
                epoll_wait(self.fd.as_raw_fd(), events.as_mut_ptr(), events.len() as i32, ms)
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// The classic self-pipe trick: other threads write a byte to wake the
/// reactor out of `epoll_wait`. Both ends are nonblocking — a full pipe
/// means a wake is already pending, so the dropped byte is harmless.
pub(super) struct WakePipe {
    read: File,
    write: Arc<File>,
}

impl WakePipe {
    pub(super) fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        let (read, write) = unsafe { (File::from_raw_fd(fds[0]), File::from_raw_fd(fds[1])) };
        Ok(WakePipe { read, write: Arc::new(write) })
    }

    /// The read end's fd, for epoll registration.
    pub(super) fn read_fd(&self) -> RawFd {
        self.read.as_raw_fd()
    }

    /// A cloneable write-end handle for the exec pool and stream mux.
    pub(super) fn handle(&self) -> WakeHandle {
        WakeHandle { write: self.write.clone() }
    }

    /// Swallow every pending wake byte.
    pub(super) fn drain(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.read).read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
    }
}

/// Write end of the reactor's [`WakePipe`], shared by every thread that
/// needs to interrupt `epoll_wait` (exec workers posting completions, the
/// stream mux, shutdown).
#[derive(Clone)]
pub(super) struct WakeHandle {
    write: Arc<File>,
}

impl WakeHandle {
    /// Wake the reactor. Never blocks; a full pipe already holds a wake.
    pub(super) fn wake(&self) {
        let _ = (&*self.write).write(&[1u8]);
    }
}
