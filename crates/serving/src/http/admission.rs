//! SLO-aware admission control for the HTTP front-end.
//!
//! The static in-flight cap (`max_queue_depth` → `429`) bounds queue
//! *depth*, but depth is a proxy: what the client cares about is whether
//! its answer arrives before its deadline. This controller predicts that
//! directly, per request, at admission time:
//!
//! ```text
//! p99(live queue wait)  +  cached_cost[len][1]   >   deadline remaining?
//!        │                        │
//!        └ the engine's own       └ the paper's cost table, priced for
//!          queue-wait histogram,    this request's length (clamped into
//!          shared through the       the profiled range)
//!          telemetry registry
//! ```
//!
//! If the sum exceeds the request's remaining budget, admitting it would
//! *predictably* burn GEMM time on an answer nobody can use — shed now
//! with `503` and an honest `Retry-After` instead. The `Retry-After`
//! value itself comes from the observed drain rate (an EWMA over
//! inter-completion gaps): `ceil(queue depth / drain rate)`, clamped to
//! `[1, TT_RETRY_AFTER_MAX]`, so a backed-up server tells clients to come
//! back when the backlog will plausibly have cleared, not after a
//! hard-coded second.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tt_telemetry::{Histogram, Registry};

use crate::cost_table::CachedCost;
use crate::deadline::Deadline;

/// EWMA weight of the newest inter-completion gap. Small enough to smooth
/// over batch completions landing together, large enough to track a load
/// shift within a few tens of requests.
const DRAIN_ALPHA: f64 = 0.2;

/// The admission-time SLO controller. One per server; shared by every
/// worker thread (all state is atomic).
pub struct AdmissionController {
    /// The engine's own queue-wait histogram — the registry's get-or-create
    /// semantics hand both sides the same `Arc`, so admission reads exactly
    /// what the engine records.
    queue_wait: Arc<Histogram>,
    /// Cost table for per-length execution estimates; without one the
    /// prediction degrades to the queue-wait term alone.
    costs: Option<Arc<CachedCost>>,
    /// EWMA of seconds between consecutive completions, as f64 bits
    /// (all-zero = no completion pair observed yet).
    drain_gap: AtomicU64,
    /// Nanoseconds since `epoch` of the last completion (0 = none yet).
    last_completion: AtomicU64,
    epoch: Instant,
}

impl AdmissionController {
    /// Build a controller reading the live `live_queue_wait_nanoseconds`
    /// histogram out of `registry` (shared with the engine) and pricing
    /// requests with `costs` when available.
    pub fn new(registry: &Registry, costs: Option<Arc<CachedCost>>) -> Self {
        AdmissionController {
            queue_wait: registry.histogram(
                "live_queue_wait_nanoseconds",
                "Time a request waits from submission until its batch starts executing",
                &[],
            ),
            costs,
            drain_gap: AtomicU64::new(0),
            last_completion: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// The controller's completion-time prediction for a request of `len`
    /// tokens admitted now: observed queue-wait p99 plus the cost-table
    /// estimate for executing it. Zero terms drop out — an empty histogram
    /// (cold server) contributes nothing, leaving the execution estimate.
    pub fn predicted_wait(&self, len: usize) -> Duration {
        let wait = Duration::from_nanos(self.queue_wait.snapshot().p99());
        let exec = self
            .costs
            .as_ref()
            .map(|c| Duration::from_secs_f64(c.single_request_estimate(len)))
            .unwrap_or(Duration::ZERO);
        wait + exec
    }

    /// Whether admitting a request of `len` tokens now would predictably
    /// violate its deadline.
    pub fn predicts_violation(&self, len: usize, deadline: &Deadline) -> bool {
        match deadline.remaining() {
            None => true, // already expired — always a violation
            Some(remaining) => self.predicted_wait(len) > remaining,
        }
    }

    /// Note one completed (answered) inference — the drain signal the
    /// `Retry-After` estimate is built from.
    pub fn note_completion(&self) {
        // `max(1)`: 0 is the "no completion yet" sentinel.
        let now_ns = (self.epoch.elapsed().as_nanos() as u64).max(1);
        let prev = self.last_completion.swap(now_ns, Ordering::Relaxed);
        if prev == 0 {
            return; // first completion: no gap to learn from yet
        }
        let gap_s = now_ns.saturating_sub(prev) as f64 / 1e9;
        if gap_s <= 0.0 {
            return; // same-tick completions (one batch) carry no rate info
        }
        let cell = &self.drain_gap;
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = if cur == 0 {
                gap_s
            } else {
                DRAIN_ALPHA * gap_s + (1.0 - DRAIN_ALPHA) * f64::from_bits(cur)
            };
            match cell.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Observed drain rate in completions per second, `None` until two
    /// completions have been seen.
    pub fn drain_per_sec(&self) -> Option<f64> {
        match self.drain_gap.load(Ordering::Relaxed) {
            0 => None,
            bits => {
                let gap = f64::from_bits(bits);
                (gap > 0.0).then(|| 1.0 / gap)
            }
        }
    }

    /// The `Retry-After` seconds to advertise on a shed, given the current
    /// queue depth: drain-rate-derived when the rate is known, else the
    /// static `fallback_s`; always clamped to `[1, max_s]`.
    pub fn retry_after(&self, queue_depth: usize, fallback_s: u64, max_s: u64) -> u64 {
        match self.drain_per_sec() {
            Some(rate) => retry_after_secs(queue_depth, rate, max_s),
            None => fallback_s.clamp(1, max_s.max(1)),
        }
    }
}

/// `ceil(queue_depth / drain_per_sec)` clamped to `[1, max_s]` — how long
/// until the backlog ahead of a retrying client has plausibly drained.
/// A vanished or nonsensical rate falls back to the 1-second floor.
pub fn retry_after_secs(queue_depth: usize, drain_per_sec: f64, max_s: u64) -> u64 {
    let max_s = max_s.max(1);
    if drain_per_sec <= 0.0 || !drain_per_sec.is_finite() {
        return 1;
    }
    let secs = (queue_depth.max(1) as f64 / drain_per_sec).ceil();
    if !secs.is_finite() {
        return max_s;
    }
    (secs as u64).clamp(1, max_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_tracks_depth_over_rate_and_clamps() {
        // 10 queued at 2/s → 5 s.
        assert_eq!(retry_after_secs(10, 2.0, 30), 5);
        // Fractional waits round up: 3 queued at 2/s → 2 s.
        assert_eq!(retry_after_secs(3, 2.0, 30), 2);
        // Fast drain clamps to the 1-second floor.
        assert_eq!(retry_after_secs(1, 1000.0, 30), 1);
        // Slow drain clamps to the ceiling.
        assert_eq!(retry_after_secs(500, 0.1, 30), 30);
        // An empty queue still advertises at least a second.
        assert_eq!(retry_after_secs(0, 2.0, 30), 1);
        // Garbage rates degrade to the floor, not a panic or a zero.
        assert_eq!(retry_after_secs(10, 0.0, 30), 1);
        assert_eq!(retry_after_secs(10, -3.0, 30), 1);
        assert_eq!(retry_after_secs(10, f64::NAN, 30), 1);
        // A zero ceiling is treated as 1, keeping the header well-formed.
        assert_eq!(retry_after_secs(10, 2.0, 0), 1);
    }

    #[test]
    fn controller_learns_the_drain_rate_from_completion_gaps() {
        let registry = Registry::new();
        let ctl = AdmissionController::new(&registry, None);
        assert_eq!(ctl.drain_per_sec(), None);
        // No drain data yet: the static fallback, clamped.
        assert_eq!(ctl.retry_after(5, 1, 30), 1);
        assert_eq!(ctl.retry_after(5, 120, 30), 30);

        ctl.note_completion();
        assert_eq!(ctl.drain_per_sec(), None, "one completion is not a gap");
        std::thread::sleep(Duration::from_millis(20));
        ctl.note_completion();
        let rate = ctl.drain_per_sec().expect("two completions make a rate");
        assert!(
            (5.0..500.0).contains(&rate),
            "a ~20ms gap is a rate in the tens per second, got {rate}"
        );
        // The derived Retry-After stays clamped and sane.
        let ra = ctl.retry_after(100, 1, 30);
        assert!((1..=30).contains(&ra));
    }

    #[test]
    fn prediction_adds_queue_wait_p99_and_cost_estimate() {
        let registry = Registry::new();
        // Flat 50 ms execution estimate at any length.
        let costs = Arc::new(CachedCost::from_fn(64, 4, 8, |_, _| 0.050));
        let ctl = AdmissionController::new(&registry, Some(costs));

        // Cold server: only the execution term. 50 ms fits a 200 ms budget…
        let roomy = Deadline::within(Duration::from_millis(200));
        assert!(!ctl.predicts_violation(10, &roomy));
        // …but not a 10 ms one.
        let tight = Deadline::within(Duration::from_millis(10));
        assert!(ctl.predicts_violation(10, &tight));

        // Oversized lengths clamp into the profiled range instead of
        // panicking at the admission boundary.
        assert!(!ctl.predicts_violation(100_000, &Deadline::within(Duration::from_secs(5))));

        // Feed the shared histogram a fat queue-wait tail: predictions
        // now include it and the 200 ms budget no longer fits.
        let wait = registry.histogram("live_queue_wait_nanoseconds", "", &[]);
        for _ in 0..100 {
            wait.record(400_000_000); // 400 ms
        }
        assert!(ctl.predicts_violation(10, &roomy));

        // An expired deadline is always a violation.
        assert!(ctl.predicts_violation(10, &Deadline::at(Instant::now())));
    }
}
