//! HTTP/1.1 serving front-end: the network boundary of the Fig. 2 stack.
//!
//! The paper's serving framework sits behind a network front-end that
//! feeds the sequence-length-aware batch scheduler; this module is that
//! boundary, built directly on [`std::net::TcpListener`] with no external
//! dependencies, matching the offline build environment.
//!
//! Two **connection drivers** implement the byte-moving half, selected by
//! `TT_HTTP_DRIVER` behind the same public API (see `docs/NETWORKING.md`):
//!
//! - [`DriverKind::Reactor`] (default on Linux) — a readiness-driven
//!   epoll event loop: one reactor thread owns every socket nonblocking,
//!   per-connection state machines drive the incremental [`parser`], a
//!   timer wheel bounds slow peers, and parsed requests are handed to a
//!   bounded execution pool. Connection count decouples from thread
//!   count, so thousands of concurrent sockets ride on
//!   `workers + 2` threads.
//! - [`DriverKind::Threads`] — the classic blocking acceptor + worker
//!   pool (one connection per worker thread at a time); the portable
//!   fallback and the baseline the reactor is benchmarked against.
//!
//! Routes:
//!
//! - `POST /v1/infer` — JSON body `{"tokens": [101, 2023, 102]}`; the
//!   token ids go through an [`InferHandler`] (in production the
//!   [`LiveClient`] handle of a running
//!   [`LiveEngine`](crate::live::LiveEngine)) and the response carries the
//!   classification vector, end-to-end latency, and the batch shape the
//!   scheduler chose;
//! - `POST /v1/generate` — JSON body `{"prompt": [...], "max_new_tokens": 8}`;
//!   a **streaming** route: the response uses chunked transfer encoding,
//!   one NDJSON event per generated token as the continuous-batching
//!   [`GenEngine`](crate::generate::GenEngine) produces them, ending with
//!   a terminal `{"event":"done",...}` chunk (see `docs/GENERATION.md`
//!   for the wire format). Under the reactor driver, token events queue
//!   per connection and flush on socket writability — a stream holds no
//!   thread while it waits for the next token;
//! - `GET /metrics` — the live [`Registry`] rendered in the Prometheus
//!   text exposition format, scrapeable while the engine serves;
//! - `GET /v1/traces/<id>` — the recorded span tree of a sampled request
//!   as JSON (see `docs/OBSERVABILITY.md`);
//! - `GET /healthz` — liveness probe.
//!
//! When the server is started with a [`Tracer`]
//! ([`HttpServer::start_traced`]), sampled `POST /v1/infer` requests get a
//! root `http` span whose context rides the job through the engine; the
//! response carries the id in an `x-tt-trace-id` header, and appending
//! `?trace=1` to the target forces sampling for that one request.
//!
//! Robustness is part of the design, not an afterthought:
//!
//! - **Backpressure and SLO-aware admission.** Parsed requests hand off
//!   to the execution pool through a *bounded* queue
//!   (`pending_connections`); overflow sheds `429` instead of queueing
//!   unboundedly. In-flight inference is capped at `max_queue_depth`
//!   (beyond it: `429`), and on top of the cap the
//!   [`admission::AdmissionController`] sheds `503` when live queue-wait
//!   p99 plus this request's cost-table estimate exceeds its deadline.
//!   Every request carries an end-to-end deadline (`x-tt-deadline-ms`
//!   header, default `TT_SLO_MS`); expired work is dropped with `504` at
//!   admission and at the engine's pre-schedule/pre-execute boundaries.
//!   All shed responses carry a `Retry-After` derived from the observed
//!   drain rate. See `docs/ROBUSTNESS.md` for the full shed taxonomy.
//! - **Limits.** Request bodies above `max_body_bytes` are refused with
//!   `413` at header time; malformed requests/JSON get `400`; per
//!   connection read/write timeouts bound a slow peer's hold on the
//!   server (enforced by the reactor's timer wheel, or by socket
//!   timeouts under the threaded driver).
//! - **Graceful shutdown.** [`HttpServer::shutdown`] stops accepting,
//!   drains every registered connection and in-flight request, joins all
//!   threads, and returns a final metrics snapshot — no request that got
//!   a `2xx` admission is dropped.
//!
//! The server reports its own traffic through `tt-telemetry` the same way
//! the engine does: `http_requests_total{route,status}`, a per-route
//! latency histogram, an active-connections gauge, a shed counter and —
//! under the reactor — `reactor_*` event-loop health metrics all land in
//! the same registry `/metrics` renders, so the front-end is visible in
//! its own exposition.

pub mod admission;
pub mod parser;

#[cfg(target_os = "linux")]
mod reactor;
#[cfg(target_os = "linux")]
mod sys;
mod threaded;

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};
use tt_telemetry::{
    trace_tree_json, Counter, Gauge, Histogram, Registry, Span, SpanContext, TraceId, Tracer,
};

use crate::cost_table::CachedCost;
use crate::deadline::Deadline;
use crate::generate::{FinishReason, GenClient, TokenEvent};
use crate::live::{LiveClient, LiveError};
use admission::AdmissionController;
use parser::HttpRequest;

/// Configuration of the HTTP front-end. Every field has a `TT_HTTP_*`
/// environment override (see [`HttpConfig::from_env`] and the README
/// config-surface table).
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Bind address (`TT_HTTP_ADDR`, default `127.0.0.1:7070`; use port 0
    /// for an ephemeral port, e.g. in tests).
    pub addr: String,
    /// Execution-pool threads running inference requests — and, under the
    /// threaded driver, connection-serving worker threads
    /// (`TT_HTTP_WORKERS`, default 4).
    pub workers: usize,
    /// Bounded hand-off queue into the execution pool: parsed requests
    /// under the reactor, accepted connections under the threaded driver
    /// (`TT_HTTP_PENDING`, default 64). When full, the reactor sheds
    /// `429`; the threaded acceptor blocks.
    pub pending_connections: usize,
    /// In-flight inference cap; beyond it `/v1/infer` sheds with `429`
    /// (`TT_HTTP_QUEUE_DEPTH`, default 32).
    pub max_queue_depth: usize,
    /// Request body size limit in bytes, enforced at header time with
    /// `413` (`TT_HTTP_MAX_BODY`, default 1 MiB).
    pub max_body_bytes: usize,
    /// Per-connection read/idle timeout (`TT_HTTP_READ_TIMEOUT_MS`,
    /// default 5000 ms). The reactor answers a mid-request stall with
    /// `408` from its timer wheel and closes idle keep-alive connections
    /// silently; the threaded driver applies it as the socket read
    /// timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout (`TT_HTTP_WRITE_TIMEOUT_MS`, default
    /// 5000 ms): how long a written-but-unflushed response may sit
    /// against a peer that stopped reading before the connection is
    /// abandoned.
    pub write_timeout: Duration,
    /// `Retry-After` seconds advertised on a shed before the server has
    /// observed a drain rate (`TT_HTTP_RETRY_AFTER_S`, default 1). Once
    /// completions flow, `Retry-After` derives from the observed drain
    /// rate instead (see [`admission::AdmissionController::retry_after`]).
    pub retry_after_s: u64,
    /// Upper clamp on any advertised `Retry-After` value in seconds
    /// (`TT_RETRY_AFTER_MAX`, default 30).
    pub retry_after_max: u64,
    /// Default end-to-end deadline budget for `/v1/infer` requests that
    /// carry no `x-tt-deadline-ms` header (`TT_SLO_MS`, default 1000 ms).
    pub slo: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            addr: "127.0.0.1:7070".to_string(),
            workers: 4,
            pending_connections: 64,
            max_queue_depth: 32,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_millis(5000),
            write_timeout: Duration::from_millis(5000),
            retry_after_s: 1,
            retry_after_max: 30,
            slo: Duration::from_millis(1000),
        }
    }
}

impl HttpConfig {
    /// Defaults overridden by any `TT_HTTP_*` environment variables that
    /// are set (unparseable values fall back to the default — a serving
    /// binary should come up even with a typo'd environment).
    pub fn from_env() -> Self {
        let d = HttpConfig::default();
        fn env<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        }
        HttpConfig {
            addr: std::env::var("TT_HTTP_ADDR").unwrap_or(d.addr),
            workers: env("TT_HTTP_WORKERS", d.workers).max(1),
            pending_connections: env("TT_HTTP_PENDING", d.pending_connections).max(1),
            max_queue_depth: env("TT_HTTP_QUEUE_DEPTH", d.max_queue_depth).max(1),
            max_body_bytes: env("TT_HTTP_MAX_BODY", d.max_body_bytes),
            read_timeout: Duration::from_millis(env(
                "TT_HTTP_READ_TIMEOUT_MS",
                d.read_timeout.as_millis() as u64,
            )),
            write_timeout: Duration::from_millis(env(
                "TT_HTTP_WRITE_TIMEOUT_MS",
                d.write_timeout.as_millis() as u64,
            )),
            retry_after_s: env("TT_HTTP_RETRY_AFTER_S", d.retry_after_s),
            retry_after_max: env("TT_RETRY_AFTER_MAX", d.retry_after_max).max(1),
            slo: Duration::from_millis(env("TT_SLO_MS", d.slo.as_millis() as u64).max(1)),
        }
    }
}

/// Which connection driver moves bytes between sockets and the execution
/// pool. Selected by `TT_HTTP_DRIVER` (`reactor` | `threads`); exported
/// at `/metrics` as the `http_driver{driver}` gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverKind {
    /// Readiness-driven epoll event loop (Linux; the default there). One
    /// reactor thread owns every socket; requests execute on the bounded
    /// pool; streams flush on writability. See `docs/NETWORKING.md`.
    Reactor,
    /// Blocking acceptor + worker pool: one thread serves one connection
    /// at a time. Portable fallback (`TT_HTTP_DRIVER=threads`), and the
    /// default off Linux.
    Threads,
}

impl DriverKind {
    /// Stable lowercase name, used in logs and the `http_driver` gauge
    /// label.
    pub fn name(self) -> &'static str {
        match self {
            DriverKind::Reactor => "reactor",
            DriverKind::Threads => "threads",
        }
    }

    /// Driver selected by `TT_HTTP_DRIVER`, defaulting to the reactor on
    /// Linux and the threaded driver elsewhere. Asking for `reactor` on a
    /// platform without epoll falls back to `threads` rather than failing
    /// — the serving surface is identical.
    pub fn from_env() -> Self {
        let default =
            if cfg!(target_os = "linux") { DriverKind::Reactor } else { DriverKind::Threads };
        match std::env::var("TT_HTTP_DRIVER").ok().as_deref() {
            Some("threads") => DriverKind::Threads,
            Some("reactor") if cfg!(target_os = "linux") => DriverKind::Reactor,
            _ => default,
        }
    }
}

/// The seam between [`HttpServer`] and a running connection driver: the
/// server starts one at bind time and only ever needs to wake it for
/// shutdown and join its threads. Everything route-level (admission,
/// deadlines, tracing, chaos, metrics) lives above this seam and is
/// shared by both implementations.
trait ConnectionDriver: Send {
    /// Nudge the driver to notice `ServerShared::shutting_down` (self-pipe
    /// wake for the reactor, a throwaway connection for the blocking
    /// acceptor). Idempotent.
    fn begin_shutdown(&self);
    /// Block until every thread the driver spawned has drained and exited.
    fn join(&mut self);
}

/// The inference backend behind `POST /v1/infer`.
///
/// Production wires the [`LiveClient`] of a running
/// [`LiveEngine`](crate::live::LiveEngine); tests substitute stubs to
/// exercise shedding and shutdown without a model.
pub trait InferHandler: Send + Sync + 'static {
    /// Run one token sequence to completion; blocks until the engine
    /// answers. Errors map to HTTP statuses (see [`InferError`]); a panic
    /// is additionally caught and mapped to `503 Service Unavailable`, so
    /// a misbehaving backend cannot take a worker thread down.
    fn infer(&self, tokens: Vec<u32>) -> Result<InferReply, InferError>;

    /// Like [`infer`](Self::infer), but carrying the trace context of a
    /// sampled request so the backend can hang its own spans (queue wait,
    /// scheduling, execution) under the server's root `http` span. The
    /// default implementation drops the context — a handler that does not
    /// trace still serves.
    fn infer_traced(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
    ) -> Result<InferReply, InferError> {
        let _ = trace;
        self.infer(tokens)
    }

    /// The full request-context path: trace plus an end-to-end
    /// [`Deadline`]. A deadline-aware backend (the [`LiveClient`]) drops
    /// the job with [`InferError::DeadlineExceeded`] at its stage
    /// boundaries once the budget is gone; the default implementation
    /// ignores the deadline — a handler without deadline support still
    /// serves, it just never sheds in-queue.
    fn infer_deadline(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<InferReply, InferError> {
        let _ = deadline;
        self.infer_traced(tokens, trace)
    }
}

/// Why an [`InferHandler`] refused or failed a request.
#[derive(Debug, Clone)]
pub enum InferError {
    /// The request can never succeed against this model (e.g. token ids
    /// outside the vocabulary) — HTTP `400`.
    BadRequest(String),
    /// The engine cannot answer right now (shut down, or it dropped the
    /// job's batch after an execution failure) — HTTP `503`.
    Unavailable(String),
    /// The request's end-to-end deadline expired before execution — the
    /// engine shed it at a stage boundary rather than serve a dead answer
    /// — HTTP `504`.
    DeadlineExceeded(String),
}

/// Admission-time vocabulary check: wraps any handler and refuses token
/// ids the model cannot embed with [`InferError::BadRequest`], so a bad
/// request costs a `400` at the boundary instead of reaching the engine.
pub struct VocabGuard<H> {
    inner: H,
    vocab_size: u32,
}

impl<H: InferHandler> VocabGuard<H> {
    /// Guard `inner` with the model's vocabulary size.
    pub fn new(inner: H, vocab_size: usize) -> Self {
        VocabGuard { inner, vocab_size: vocab_size as u32 }
    }
}

impl<H: InferHandler> InferHandler for VocabGuard<H> {
    fn infer(&self, tokens: Vec<u32>) -> Result<InferReply, InferError> {
        self.infer_deadline(tokens, None, None)
    }

    fn infer_traced(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
    ) -> Result<InferReply, InferError> {
        self.infer_deadline(tokens, trace, None)
    }

    fn infer_deadline(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<InferReply, InferError> {
        if let Some(&bad) = tokens.iter().find(|&&t| t >= self.vocab_size) {
            return Err(InferError::BadRequest(format!(
                "token id {bad} out of range for vocabulary of {}",
                self.vocab_size
            )));
        }
        self.inner.infer_deadline(tokens, trace, deadline)
    }
}

/// What the backend hands back for one request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferReply {
    /// The `[CLS]`-position hidden vector — the classification logits'
    /// feature input.
    pub cls_vector: Vec<f32>,
    /// Engine-side latency in milliseconds (submission → completion).
    pub latency_ms: f64,
    /// How many requests shared the executed batch.
    pub batch_size: usize,
    /// Zero-padded sequence length of that batch.
    pub padded_len: usize,
}

impl InferHandler for LiveClient {
    fn infer(&self, tokens: Vec<u32>) -> Result<InferReply, InferError> {
        self.infer_deadline(tokens, None, None)
    }

    fn infer_traced(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
    ) -> Result<InferReply, InferError> {
        self.infer_deadline(tokens, trace, None)
    }

    fn infer_deadline(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<InferReply, InferError> {
        match self.infer_request(tokens, trace, deadline) {
            Ok(resp) => Ok(InferReply {
                cls_vector: resp.cls_vector,
                latency_ms: resp.latency.as_secs_f64() * 1e3,
                batch_size: resp.batch_size,
                padded_len: resp.padded_len,
            }),
            Err(LiveError::DeadlineExceeded) => Err(InferError::DeadlineExceeded(
                "deadline expired while the request waited in the engine queue".into(),
            )),
            Err(LiveError::Unavailable) => Err(InferError::Unavailable(
                "engine dropped the job (shut down, or its batch failed to execute)".into(),
            )),
        }
    }
}

/// The generative backend behind `POST /v1/generate`.
///
/// Production wires the [`GenClient`] of a running
/// [`GenEngine`](crate::generate::GenEngine); tests substitute stubs.
/// The returned receiver yields one [`TokenEvent`] per generated token
/// and always ends with a terminal [`TokenEvent::Done`].
pub trait GenerateHandler: Send + Sync + 'static {
    /// Start one generation; returns the event stream. Rejections that
    /// prevent a stream from existing at all map to [`InferError`];
    /// everything after that — including deadline expiry and page
    /// exhaustion mid-generation — arrives as a typed terminal event on
    /// the stream.
    fn generate(
        &self,
        prompt: Vec<u32>,
        max_new_tokens: usize,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<crossbeam::channel::Receiver<TokenEvent>, InferError>;
}

impl GenerateHandler for GenClient {
    fn generate(
        &self,
        prompt: Vec<u32>,
        max_new_tokens: usize,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<crossbeam::channel::Receiver<TokenEvent>, InferError> {
        self.generate_request(prompt, max_new_tokens, trace, deadline)
            .map_err(|_| InferError::Unavailable("generation engine is gone".into()))
    }
}

/// JSON body of `POST /v1/infer`.
#[derive(Debug, Deserialize)]
struct InferRequestBody {
    tokens: Vec<u32>,
}

/// JSON body of `POST /v1/generate`. An absent (or zero) `max_new_tokens`
/// means "server default" — [`DEFAULT_MAX_NEW_TOKENS`].
#[derive(Debug, Deserialize)]
struct GenerateRequestBody {
    prompt: Vec<u32>,
    #[serde(default)]
    max_new_tokens: usize,
}

/// Tokens generated when the client does not ask for a specific count.
const DEFAULT_MAX_NEW_TOKENS: usize = 16;

/// Server-side telemetry, reported into the same registry `/metrics`
/// renders.
#[derive(Clone)]
struct HttpMetrics {
    registry: Registry,
    latency: [(&'static str, Arc<Histogram>); 6],
    active_connections: Arc<Gauge>,
    infer_inflight: Arc<Gauge>,
    /// Shed counters by taxonomy: `capacity` (429, in-flight cap),
    /// `predicted_slo` (503, admission prediction), `deadline` (504,
    /// expired budget — at admission or inside the engine). Eagerly
    /// registered so the family scrapes complete from the first request.
    sheds_capacity: Arc<Counter>,
    sheds_predicted: Arc<Counter>,
    sheds_deadline: Arc<Counter>,
    /// Requests that were admitted, served 200 — but finished past their
    /// deadline anyway (the answer arrived too late to be useful).
    slo_violations: Arc<Counter>,
}

/// Route label for metrics: known routes verbatim, everything else pooled
/// so arbitrary client paths cannot grow label cardinality.
fn route_label(path: &str, method: &str) -> &'static str {
    match (method, path) {
        ("POST", "/v1/infer") => "/v1/infer",
        ("POST", "/v1/generate") => "/v1/generate",
        ("GET", "/metrics") => "/metrics",
        ("GET", "/healthz") => "/healthz",
        ("GET", p) if p.starts_with("/v1/traces/") => "/v1/traces",
        _ => "other",
    }
}

impl HttpMetrics {
    fn register(registry: &Registry) -> Self {
        let hist = |route: &'static str| {
            (
                route,
                registry.histogram(
                    "http_request_nanoseconds",
                    "Wall time from parsed request to written response",
                    &[("route", route)],
                ),
            )
        };
        HttpMetrics {
            registry: registry.clone(),
            latency: [
                hist("/v1/infer"),
                hist("/v1/generate"),
                hist("/metrics"),
                hist("/healthz"),
                hist("/v1/traces"),
                hist("other"),
            ],
            active_connections: registry.gauge(
                "http_active_connections",
                "Currently open client connections",
                &[],
            ),
            infer_inflight: registry.gauge(
                "http_infer_inflight",
                "Inference requests admitted and not yet answered",
                &[],
            ),
            sheds_capacity: registry.counter(
                "http_sheds_total",
                "Requests shed at admission, by reason",
                &[("reason", "capacity")],
            ),
            sheds_predicted: registry.counter(
                "http_sheds_total",
                "Requests shed at admission, by reason",
                &[("reason", "predicted_slo")],
            ),
            sheds_deadline: registry.counter(
                "http_sheds_total",
                "Requests shed at admission, by reason",
                &[("reason", "deadline")],
            ),
            slo_violations: registry.counter(
                "slo_violation_total",
                "Admitted requests answered 200 but past their deadline",
                &[],
            ),
        }
    }

    fn shed(&self, reason: &str) {
        match reason {
            "capacity" => self.sheds_capacity.inc(),
            "predicted_slo" => self.sheds_predicted.inc(),
            _ => self.sheds_deadline.inc(),
        }
    }

    fn observe(&self, route: &'static str, status: u16, nanos: u64) {
        // requests_total is registered lazily per (route, status) pair;
        // both label sets are bounded (4 routes × ~9 statuses).
        self.registry
            .counter(
                "http_requests_total",
                "HTTP requests served, by route and status",
                &[("route", route), ("status", status_label(status))],
            )
            .inc();
        if let Some((_, h)) = self.latency.iter().find(|(r, _)| *r == route) {
            h.record(nanos);
        }
    }
}

/// Static status-code strings so metric labels never allocate surprises.
fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        408 => "408",
        413 => "413",
        429 => "429",
        503 => "503",
        504 => "504",
        _ => "500",
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

/// A bounded blocking hand-off queue (std `Mutex` + `Condvar`; the
/// vendored crossbeam shim's receiver is single-consumer, and the pool
/// needs many consumers). The threaded driver queues accepted
/// connections through it; the reactor queues parsed requests for the
/// execution pool.
struct WorkQueue<T> {
    state: Mutex<QueueState<T>>,
    readable: Condvar,
    writable: Condvar,
    capacity: usize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> WorkQueue<T> {
    fn new(capacity: usize) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        }
    }

    /// Blocking bounded push; drops the item if the queue is closed.
    fn push(&self, item: T) {
        let mut state = self.state.lock().expect("queue lock");
        while state.items.len() >= self.capacity && !state.closed {
            state = self.writable.wait(state).expect("queue lock");
        }
        if state.closed {
            return; // shutting down: the un-handed-off item is dropped
        }
        state.items.push_back(item);
        self.readable.notify_one();
    }

    /// Non-blocking push: `Err(item)` back if the queue is full or
    /// closed, so a reactor thread can shed instead of stalling.
    fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        self.readable.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` once the queue is closed *and* drained.
    fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.writable.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.readable.wait(state).expect("queue lock");
        }
    }

    /// Stop accepting pushes; wake every waiter. Queued items still drain.
    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }
}

/// Shared server state handed to every driver and execution-pool thread.
struct ServerShared {
    config: HttpConfig,
    handler: Arc<dyn InferHandler>,
    /// Generative backend; `/v1/generate` answers `503` when absent.
    generate: Option<Arc<dyn GenerateHandler>>,
    metrics: HttpMetrics,
    registry: Registry,
    tracer: Tracer,
    shutting_down: AtomicBool,
    infer_inflight: AtomicUsize,
    admission: AdmissionController,
}

/// A running HTTP front-end: a connection driver (reactor event loop or
/// blocking acceptor + worker pool, see [`DriverKind`]) over the shared
/// routing, admission and telemetry core.
///
/// ```no_run
/// use std::sync::Arc;
/// use tt_serving::http::{HttpConfig, HttpServer};
/// # use tt_serving::http::{InferError, InferHandler, InferReply};
/// # struct Stub;
/// # impl InferHandler for Stub {
/// #     fn infer(&self, _t: Vec<u32>) -> Result<InferReply, InferError> {
/// #         Ok(InferReply { cls_vector: vec![], latency_ms: 0.0, batch_size: 1, padded_len: 1 })
/// #     }
/// # }
/// let registry = tt_telemetry::Registry::new();
/// let server = HttpServer::start(HttpConfig::default(), Arc::new(Stub), &registry).unwrap();
/// println!("serving on http://{}", server.addr());
/// let final_metrics = server.shutdown();
/// ```
pub struct HttpServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    driver: Option<Box<dyn ConnectionDriver>>,
    kind: DriverKind,
}

impl HttpServer {
    /// Bind `config.addr`, register the `http_*` metric family in
    /// `registry`, and start the connection driver. The returned server
    /// is live: [`addr`](Self::addr) tells the (possibly ephemeral)
    /// bound address.
    pub fn start(
        config: HttpConfig,
        handler: Arc<dyn InferHandler>,
        registry: &Registry,
    ) -> std::io::Result<HttpServer> {
        HttpServer::start_traced(config, handler, registry, Tracer::disabled())
    }

    /// [`start`](Self::start), plus request tracing: sampled `/v1/infer`
    /// requests get a root `http` span (forceable per request with
    /// `?trace=1`), answer with an `x-tt-trace-id` header, and their span
    /// trees become queryable at `GET /v1/traces/<id>`. Share the same
    /// `tracer` with [`LiveEngine::start_traced`](crate::live::LiveEngine::start_traced)
    /// so engine-side spans land in the same trace.
    pub fn start_traced(
        config: HttpConfig,
        handler: Arc<dyn InferHandler>,
        registry: &Registry,
        tracer: Tracer,
    ) -> std::io::Result<HttpServer> {
        HttpServer::start_with_costs(config, handler, registry, tracer, None)
    }

    /// [`start_traced`](Self::start_traced), additionally handing the
    /// admission controller the engine's cost table. With it, SLO-aware
    /// admission prices each request's length (queue-wait p99 + execution
    /// estimate vs. its deadline) and sheds predictable violations with
    /// `503` before they reach the engine; without it, the prediction
    /// falls back to the queue-wait term alone.
    pub fn start_with_costs(
        config: HttpConfig,
        handler: Arc<dyn InferHandler>,
        registry: &Registry,
        tracer: Tracer,
        costs: Option<Arc<CachedCost>>,
    ) -> std::io::Result<HttpServer> {
        HttpServer::start_generative(config, handler, None, registry, tracer, costs)
    }

    /// [`start_with_costs`](Self::start_with_costs), additionally wiring a
    /// generative backend behind the streaming `POST /v1/generate` route
    /// (in production the [`GenClient`] of a running
    /// [`GenEngine`](crate::generate::GenEngine)). Servers started without
    /// one answer `503` on that route. The connection driver comes from
    /// `TT_HTTP_DRIVER` (see [`DriverKind::from_env`]).
    pub fn start_generative(
        config: HttpConfig,
        handler: Arc<dyn InferHandler>,
        generate: Option<Arc<dyn GenerateHandler>>,
        registry: &Registry,
        tracer: Tracer,
        costs: Option<Arc<CachedCost>>,
    ) -> std::io::Result<HttpServer> {
        HttpServer::start_with_driver(
            config,
            handler,
            generate,
            registry,
            tracer,
            costs,
            DriverKind::from_env(),
        )
    }

    /// [`start_generative`](Self::start_generative) with an explicit
    /// [`DriverKind`] instead of the `TT_HTTP_DRIVER` environment lookup
    /// — what benches and tests use to pin a driver without mutating
    /// process-global environment. On a platform without epoll a
    /// requested [`DriverKind::Reactor`] silently runs the threaded
    /// driver (and reports `threads` in [`driver`](Self::driver) and the
    /// `http_driver` gauge).
    #[allow(clippy::too_many_arguments)]
    pub fn start_with_driver(
        config: HttpConfig,
        handler: Arc<dyn InferHandler>,
        generate: Option<Arc<dyn GenerateHandler>>,
        registry: &Registry,
        tracer: Tracer,
        costs: Option<Arc<CachedCost>>,
        kind: DriverKind,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = HttpMetrics::register(registry);
        let shared = Arc::new(ServerShared {
            config,
            handler,
            generate,
            metrics,
            registry: registry.clone(),
            tracer,
            shutting_down: AtomicBool::new(false),
            infer_inflight: AtomicUsize::new(0),
            admission: AdmissionController::new(registry, costs),
        });

        #[cfg(not(target_os = "linux"))]
        let kind = match kind {
            DriverKind::Reactor => DriverKind::Threads,
            k => k,
        };
        let driver: Box<dyn ConnectionDriver> = match kind {
            #[cfg(target_os = "linux")]
            DriverKind::Reactor => Box::new(reactor::ReactorDriver::start(listener, &shared)?),
            #[cfg(not(target_os = "linux"))]
            DriverKind::Reactor => unreachable!("reactor remapped to threads above"),
            DriverKind::Threads => {
                Box::new(threaded::ThreadedDriver::start(listener, addr, &shared))
            }
        };
        // Mirrors `gemm_kernel_variant`: a labeled always-1 gauge so a
        // scrape can tell which driver a deployment is running.
        registry
            .gauge(
                "http_driver",
                "Active HTTP connection driver (labeled; value is always 1)",
                &[("driver", kind.name())],
            )
            .set(1.0);

        Ok(HttpServer { addr, shared, driver: Some(driver), kind })
    }

    /// The bound listen address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Which connection driver this server is running.
    pub fn driver(&self) -> DriverKind {
        self.kind
    }

    /// Graceful shutdown: stop accepting, drain every registered
    /// connection and in-flight request, join all threads, and return a
    /// final snapshot of the registry in Prometheus text form — the last
    /// scrape a monitoring system would otherwise have missed.
    pub fn shutdown(mut self) -> String {
        self.begin_shutdown();
        if let Some(mut driver) = self.driver.take() {
            driver.join();
        }
        sync_chaos_metrics(&self.shared.registry);
        self.shared.registry.render_prometheus()
    }

    fn begin_shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        if let Some(driver) = &self.driver {
            driver.begin_shutdown();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(mut driver) = self.driver.take() {
            driver.join();
        }
    }
}

/// Routed response: status, content type, body, extra headers.
type Response = (u16, String, Vec<u8>, Vec<(String, String)>);

/// Route one parsed request to a complete response. `POST /v1/infer`
/// blocks on the engine, so only execution-pool (or threaded-driver
/// worker) threads may call this with that route; the reactor answers
/// the non-blocking routes inline and ships the blocking ones to the
/// pool.
fn dispatch(request: &HttpRequest, shared: &ServerShared) -> Response {
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => json_response(200, "{\"status\":\"ok\"}".into()),
        ("GET", "/metrics") => {
            sync_chaos_metrics(&shared.registry);
            (
                200,
                "text/plain; version=0.0.4".to_string(),
                shared.registry.render_prometheus().into_bytes(),
                Vec::new(),
            )
        }
        ("POST", "/v1/infer") => infer_route(request, shared),
        ("GET", p) if p.starts_with("/v1/traces/") => traces_route(p, shared),
        (_, "/healthz" | "/metrics" | "/v1/infer" | "/v1/generate") => {
            error_body(405, &format!("{} not allowed on {}", request.method, request.path()))
        }
        (_, p) if p.starts_with("/v1/traces/") => {
            error_body(405, &format!("{} not allowed on {}", request.method, request.path()))
        }
        _ => error_body(404, &format!("no route for {}", request.path())),
    }
}

/// Scrape-time sync of the `tt-chaos` fire counters into the registry as
/// `chaos_fired_total{point}`. The chaos counters are process-global raw
/// totals that [`tt_chaos::install`] resets on re-arm, while registry
/// counters are monotone — so this folds *deltas* in (a raw value below
/// the last-seen one means a reset happened, and the raw value itself is
/// the delta). Every injection point is registered even at zero, so the
/// family is visible to a scraper before the first fault fires.
fn sync_chaos_metrics(registry: &Registry) {
    const POINTS: usize = tt_chaos::FAULT_POINTS.len();
    static LAST_SEEN: [AtomicU64; POINTS] = [const { AtomicU64::new(0) }; POINTS];
    for (i, (point, fired)) in tt_chaos::fired_counts().into_iter().enumerate() {
        let last = LAST_SEEN[i].swap(fired, Ordering::Relaxed);
        let delta = if fired >= last { fired - last } else { fired };
        let counter = registry.counter(
            "chaos_fired_total",
            "Chaos faults fired, by injection point",
            &[("point", point.name())],
        );
        if delta > 0 {
            counter.add(delta);
        }
    }
}

/// Build a shed response: count it under its taxonomy reason, attach a
/// drain-rate-derived `Retry-After`, and answer with the shed status
/// (`429` capacity / `503` predicted SLO / `504` deadline).
fn shed_response(shared: &ServerShared, status: u16, reason: &str, message: &str) -> Response {
    shared.metrics.shed(reason);
    let (status, ct, body, mut extra) = error_body(status, message);
    let depth = shared.infer_inflight.load(Ordering::SeqCst);
    let retry = shared.admission.retry_after(
        depth,
        shared.config.retry_after_s,
        shared.config.retry_after_max,
    );
    extra.push(("Retry-After".to_string(), retry.to_string()));
    (status, ct, body, extra)
}

fn infer_route(request: &HttpRequest, shared: &ServerShared) -> Response {
    let body: InferRequestBody = match serde_json::from_slice(&request.body) {
        Ok(body) => body,
        Err(e) => return error_body(400, &format!("malformed JSON body: {e:?}")),
    };
    if body.tokens.is_empty() {
        return error_body(400, "tokens must be non-empty");
    }

    // End-to-end deadline: per-request header override, else the server's
    // SLO default. The deadline clock starts here, at admission — queue
    // wait, scheduling and execution all spend the same budget.
    let deadline = match parse_deadline(request, shared) {
        Ok(deadline) => deadline,
        Err(resp) => return resp,
    };

    // Admission boundary 1 — capacity: the in-flight cap bounds queue
    // depth outright; beyond it, shed instead of queuing.
    let depth = shared.infer_inflight.fetch_add(1, Ordering::SeqCst);
    if depth >= shared.config.max_queue_depth {
        shared.infer_inflight.fetch_sub(1, Ordering::SeqCst);
        return shed_response(shared, 429, "capacity", "engine queue is full; retry later");
    }
    // Admission boundary 2 — SLO prediction: observed queue-wait p99 plus
    // this request's execution estimate must fit its remaining budget,
    // else admitting it would predictably produce a dead answer.
    if shared.admission.predicts_violation(body.tokens.len(), &deadline) {
        shared.infer_inflight.fetch_sub(1, Ordering::SeqCst);
        if deadline.expired() {
            return shed_response(shared, 504, "deadline", "deadline expired before admission");
        }
        return shed_response(
            shared,
            503,
            "predicted_slo",
            "predicted completion time exceeds the request deadline; retry later",
        );
    }
    shared.metrics.infer_inflight.add(1.0);

    // Head sampling decides here, at the edge; `?trace=1` forces this one
    // request in regardless of the sampling rate.
    let force = request.query_param("trace").is_some_and(|v| v != "0");
    let mut root = shared.tracer.start_root("http", force);
    if let Some(span) = root.as_mut() {
        span.attr_str("route", "/v1/infer");
        span.attr_int("tokens", body.tokens.len() as i64);
    }
    let ctx = root.as_ref().map(|span| span.context());

    let handler = shared.handler.clone();
    let tokens = body.tokens;
    let result =
        catch_unwind(AssertUnwindSafe(move || handler.infer_deadline(tokens, ctx, Some(deadline))));

    shared.infer_inflight.fetch_sub(1, Ordering::SeqCst);
    shared.metrics.infer_inflight.add(-1.0);
    // Every answered admission — success or failure — is drain: the
    // Retry-After estimate tracks how fast slots free up.
    shared.admission.note_completion();

    let mut trace_headers = Vec::new();
    if let Some(ctx) = ctx {
        trace_headers.push(("x-tt-trace-id".to_string(), ctx.trace.to_string()));
    }

    let response = match result {
        Ok(Ok(reply)) => {
            if deadline.expired() {
                // Served, but past its budget: the answer shipped anyway
                // (the work was already spent) and the violation is
                // counted — this is the metric SLO-aware admission exists
                // to keep at zero.
                shared.metrics.slo_violations.inc();
            }
            if let Some(span) = root.as_mut() {
                span.attr_int("status", 200);
                span.attr_int("batch_size", reply.batch_size as i64);
                span.attr_int("padded_len", reply.padded_len as i64);
            }
            let json = serde_json::to_string(&reply).expect("reply serializes");
            json_response(200, json)
        }
        Ok(Err(InferError::BadRequest(message))) => error_body(400, &message),
        Ok(Err(InferError::Unavailable(message))) => error_body(503, &message),
        Ok(Err(InferError::DeadlineExceeded(message))) => {
            // Shed inside the engine (pre-schedule or pre-execute
            // boundary): same taxonomy bucket as an admission-time
            // deadline shed, same Retry-After contract.
            shed_response(shared, 504, "deadline", &message)
        }
        Err(_panic) => error_body(503, "inference engine is unavailable"),
    };
    if let Some(span) = root.as_mut() {
        if response.0 != 200 {
            span.attr_int("status", response.0 as i64);
        }
    }
    // Record the root span now so `GET /v1/traces/<id>` sees the full tree
    // as soon as the client receives this response.
    drop(root);

    let (status, ct, body, mut extra) = response;
    extra.extend(trace_headers);
    (status, ct, body, extra)
}

/// Per-request deadline: `x-tt-deadline-ms` header override, else the
/// configured SLO default. `Err` carries the `400` for a malformed header.
fn parse_deadline(request: &HttpRequest, shared: &ServerShared) -> Result<Deadline, Response> {
    match request.header("x-tt-deadline-ms") {
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => Ok(Deadline::within(Duration::from_millis(ms))),
            _ => Err(error_body(
                400,
                &format!(
                    "x-tt-deadline-ms must be a positive integer of milliseconds, got '{raw}'"
                ),
            )),
        },
        None => Ok(Deadline::within(shared.config.slo)),
    }
}

/// One token event as an NDJSON line (the `/v1/generate` wire format; see
/// `docs/GENERATION.md`).
fn event_json(ev: &TokenEvent) -> String {
    match ev {
        TokenEvent::Token { index, token } => {
            format!("{{\"event\":\"token\",\"index\":{index},\"token\":{token}}}\n")
        }
        TokenEvent::Done { finish, tokens } => format!(
            "{{\"event\":\"done\",\"finish\":\"{}\",\"tokens\":{tokens},\"error\":{}}}\n",
            finish.as_str(),
            finish.is_error()
        ),
    }
}

/// Balances the in-flight admission slot taken by a generation stream, on
/// every exit path (including panics, mid-stream write failures, and —
/// under the reactor — client disconnects that cancel the stream-mux
/// entry owning this slot).
struct InflightSlot(Arc<ServerShared>);

impl Drop for InflightSlot {
    fn drop(&mut self) {
        self.0.infer_inflight.fetch_sub(1, Ordering::SeqCst);
        self.0.metrics.infer_inflight.add(-1.0);
        self.0.admission.note_completion();
    }
}

/// An admitted, started generation: the live token stream plus everything
/// whose lifetime must equal the stream's — the in-flight slot, the root
/// span (records on drop), and the trace id for the response head.
struct StreamState {
    events: crossbeam::channel::Receiver<TokenEvent>,
    slot: InflightSlot,
    span: Option<Span>,
    trace: Option<TraceId>,
}

/// How `POST /v1/generate` admission resolved.
enum GenAdmission {
    /// No stream: a complete (error or shed) response to write.
    Plain(Response),
    /// Admitted: the engine accepted the generation and will produce
    /// events. The first event still decides between a `200` chunked
    /// stream and a typed rejection (see [`classify_first_event`]).
    Stream(StreamState),
}

/// Everything `POST /v1/generate` does before the first token event:
/// body/deadline validation, backend presence, the capacity boundary
/// (taking an [`InflightSlot`]), the root span, and submission to the
/// engine. Shared verbatim by both drivers; only the event-pumping half
/// differs (blocking loop vs. reactor stream mux).
fn generate_admit(request: &HttpRequest, shared: &Arc<ServerShared>) -> GenAdmission {
    let body: GenerateRequestBody = match serde_json::from_slice(&request.body) {
        Ok(body) => body,
        Err(e) => {
            return GenAdmission::Plain(error_body(400, &format!("malformed JSON body: {e:?}")))
        }
    };
    if body.prompt.is_empty() {
        return GenAdmission::Plain(error_body(400, "prompt must be non-empty"));
    }
    let deadline = match parse_deadline(request, shared) {
        Ok(deadline) => deadline,
        Err(resp) => return GenAdmission::Plain(resp),
    };
    let Some(backend) = shared.generate.clone() else {
        return GenAdmission::Plain(error_body(
            503,
            "this server has no generative backend behind /v1/generate",
        ));
    };

    // Same capacity boundary as `/v1/infer`: a stream holds an in-flight
    // slot for its whole lifetime.
    let depth = shared.infer_inflight.fetch_add(1, Ordering::SeqCst);
    if depth >= shared.config.max_queue_depth {
        shared.infer_inflight.fetch_sub(1, Ordering::SeqCst);
        return GenAdmission::Plain(shed_response(
            shared,
            429,
            "capacity",
            "engine queue is full; retry later",
        ));
    }
    shared.metrics.infer_inflight.add(1.0);
    let slot = InflightSlot(shared.clone());

    let force = request.query_param("trace").is_some_and(|v| v != "0");
    let mut span = shared.tracer.start_root("http", force);
    if let Some(span) = span.as_mut() {
        span.attr_str("route", "/v1/generate");
        span.attr_int("prompt_len", body.prompt.len() as i64);
        span.attr_int("max_new_tokens", body.max_new_tokens as i64);
    }
    let ctx = span.as_ref().map(|span| span.context());

    let max_new =
        if body.max_new_tokens == 0 { DEFAULT_MAX_NEW_TOKENS } else { body.max_new_tokens };
    let prompt = body.prompt;
    let result =
        catch_unwind(AssertUnwindSafe(|| backend.generate(prompt, max_new, ctx, Some(deadline))));
    let events = match result {
        Ok(Ok(events)) => events,
        Ok(Err(InferError::BadRequest(message))) => {
            return GenAdmission::Plain(error_body(400, &message))
        }
        Ok(Err(InferError::DeadlineExceeded(message))) => {
            return GenAdmission::Plain(shed_response(shared, 504, "deadline", &message))
        }
        Ok(Err(InferError::Unavailable(message))) => {
            return GenAdmission::Plain(error_body(503, &message))
        }
        Err(_panic) => {
            return GenAdmission::Plain(error_body(503, "generation backend is unavailable"))
        }
    };
    // The slot rides inside the stream state from here on: dropping the
    // stream (client gone, engine done) releases the admission slot.
    GenAdmission::Stream(StreamState { events, slot, span, trace: ctx.map(|c| c.trace) })
}

/// Classify the first event of an admitted stream: an engine-side
/// rejection that produced no tokens becomes a proper HTTP error instead
/// of a `200` stream that instantly fails. `None` means commit to the
/// `200` chunked stream (a 0-token eos/length stream is still a valid,
/// empty stream).
fn classify_first_event(first: &TokenEvent, shared: &ServerShared) -> Option<Response> {
    if let TokenEvent::Done { finish, tokens: 0 } = first {
        return reject_response(finish, shared);
    }
    None
}

/// The typed rejection for a fatal zero-token finish; `None` for the
/// non-fatal finishes.
fn reject_response(finish: &FinishReason, shared: &ServerShared) -> Option<Response> {
    match finish {
        FinishReason::Deadline => {
            Some(shed_response(shared, 504, "deadline", "deadline expired before generation"))
        }
        FinishReason::OutOfPages => {
            Some(shed_response(shared, 429, "capacity", "KV-cache pages exhausted; retry later"))
        }
        FinishReason::Rejected => Some(error_body(
            400,
            "prompt cannot be served (longer than the context window or KV \
             arena, or contains out-of-vocabulary token ids)",
        )),
        // A 0-token eos/length stream is still a valid (empty) stream.
        FinishReason::Eos | FinishReason::Length => None,
    }
}

/// The committed `200` chunked-stream response head. Streams always close
/// the connection — chunk framing ends the body, and keep-alive buys
/// nothing after a generation-length exchange.
fn stream_head(trace: Option<TraceId>) -> String {
    let mut head = String::from(
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\n",
    );
    if let Some(trace) = trace {
        head.push_str(&format!("x-tt-trace-id: {trace}\r\n"));
    }
    head.push_str("Connection: close\r\n\r\n");
    head
}

/// `GET /v1/traces/<id>`: the span tree of one sampled request as JSON.
fn traces_route(path: &str, shared: &ServerShared) -> Response {
    let id = path.trim_start_matches("/v1/traces/");
    let Some(trace) = TraceId::parse(id) else {
        return error_body(400, &format!("'{id}' is not a trace id (up to 16 hex digits)"));
    };
    let spans = shared.tracer.spans_of(trace);
    if spans.is_empty() {
        return error_body(
            404,
            &format!("no spans recorded for trace {trace} (unsampled, expired, or never seen)"),
        );
    }
    json_response(200, trace_tree_json(trace, &spans))
}

fn json_response(status: u16, json: String) -> Response {
    (status, "application/json".to_string(), json.into_bytes(), Vec::new())
}

fn error_body(status: u16, message: &str) -> Response {
    let json = format!("{{\"error\":{}}}", json_escape(message));
    json_response(status, json)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize a response head (both drivers write the identical bytes).
fn render_head(
    status: u16,
    content_type: &str,
    body_len: usize,
    extra_headers: &[(String, String)],
    close: bool,
) -> String {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        status_reason(status),
        content_type,
        body_len
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    head
}
