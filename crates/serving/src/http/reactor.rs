//! The epoll reactor connection driver: readiness-driven I/O so
//! connection count decouples from thread count.
//!
//! One reactor thread owns every socket (all nonblocking, registered
//! edge-triggered) and runs the event loop:
//!
//! ```text
//!              epoll_wait ──► accept burst ──► register conn (EPOLLIN|OUT|RDHUP|ET)
//!                   │
//!                   ├──► conn readable ──► read to buffer ──► parser state machine
//!                   │         GET routes answered inline; POST /v1/infer and
//!                   │         /v1/generate hand off to the bounded execution pool
//!                   │
//!                   ├──► conn writable ──► flush pending output buffer
//!                   │
//!                   ├──► self-pipe wake ──► drain completion queue
//!                   │         (responses from the exec pool, token events from
//!                   │          the stream mux) ──► append to out buffers ──► flush
//!                   │
//!                   └──► timer wheel tick ──► read/write/idle timeouts, chaos stalls
//! ```
//!
//! Per-connection state machine: `Idle` (parsing) → `Executing` (one
//! request in the pool; pipelined bytes stay buffered so responses keep
//! order) → back to `Idle`, or → `Streaming` once a generation commits
//! its `200` chunked head. Slow peers never hold a thread: a stalled
//! read gets `408` from the **timer wheel** (hashed, 512 slots × 8 ms),
//! a stalled write is abandoned after `write_timeout`, and an idle
//! keep-alive connection is closed silently after `read_timeout`.
//!
//! `/v1/generate` streams are reactor-native: a single **stream mux**
//! thread polls every active generation's event channel and posts token
//! chunks to the reactor through the completion queue + self-pipe, so a
//! stream in progress pins no thread — backpressure is the connection's
//! output buffer flushing on writability. A client disconnect cancels
//! the mux entry, dropping the engine-side receiver, which retires the
//! sequence and frees its KV pages the same iteration.
//!
//! Loop health is exported as `reactor_*` metrics (registered fds, ready
//! events per wake, loop latency, wakeups, timer fires). Architecture
//! and tuning: `docs/NETWORKING.md`.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tt_telemetry::{Counter, Gauge, Histogram, Registry, TraceId};

use super::parser::{parse_request, HttpRequest, ParseOutcome};
use super::sys::{
    Epoll, EpollEvent, WakeHandle, WakePipe, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT,
    EPOLLRDHUP,
};
use super::{
    dispatch, error_body, event_json, generate_admit, infer_route, reject_response, render_head,
    route_label, shed_response, stream_head, ConnectionDriver, GenAdmission, Response,
    ServerShared, StreamState, WorkQueue,
};
use crate::generate::{FinishReason, TokenEvent};

/// Epoll token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Epoll token of the self-pipe read end.
const TOKEN_WAKE: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Timer wheel geometry: 512 slots × 8 ms tick ≈ a 4 s horizon per
/// rotation; longer deadlines simply survive a lap and re-arm.
const WHEEL_SLOTS: usize = 512;
const TICK_MS: u64 = 8;

#[derive(Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    /// Read/idle deadline: `408` a mid-request stall, close an idle conn.
    Read,
    /// Write deadline: abandon a peer that stopped reading our response.
    Write,
    /// Chaos `conn_stall` deferral: resume reading when it fires.
    Stall,
}

struct TimerEntry {
    conn: u64,
    kind: TimerKind,
    /// Lazy cancellation: the entry only fires if the connection's
    /// generation counter for this kind still matches.
    generation: u64,
    deadline: Instant,
}

/// Hashed timer wheel. Entries land in `deadline`'s slot; firing a slot
/// re-arms entries whose deadline is still in the future (later laps).
struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    start: Instant,
    /// Ticks fully processed since `start`.
    cursor: u64,
    pending: usize,
}

impl TimerWheel {
    fn new(start: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            start,
            cursor: 0,
            pending: 0,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        (t.saturating_duration_since(self.start).as_millis() as u64) / TICK_MS
    }

    fn arm(&mut self, entry: TimerEntry) {
        let tick = self.tick_of(entry.deadline).max(self.cursor + 1);
        self.slots[(tick % WHEEL_SLOTS as u64) as usize].push(entry);
        self.pending += 1;
    }

    /// Advance to `now`, moving due entries into `fired`.
    fn advance(&mut self, now: Instant, fired: &mut Vec<TimerEntry>) {
        let target = self.tick_of(now);
        let mut rearm = Vec::new();
        while self.cursor < target {
            self.cursor += 1;
            let slot = (self.cursor % WHEEL_SLOTS as u64) as usize;
            for entry in self.slots[slot].drain(..) {
                self.pending -= 1;
                if entry.deadline <= now {
                    fired.push(entry);
                } else {
                    rearm.push(entry); // a later lap owns this entry
                }
            }
        }
        for entry in rearm {
            self.arm(entry);
        }
    }

    /// How long `epoll_wait` may sleep: one tick while timers are
    /// pending, forever otherwise (completions arrive via the wake pipe).
    fn timeout(&self) -> Option<Duration> {
        (self.pending > 0).then(|| Duration::from_millis(TICK_MS))
    }
}

/// Event-loop health metrics (see `docs/NETWORKING.md` /
/// `docs/OBSERVABILITY.md`).
struct ReactorMetrics {
    registered_fds: Arc<Gauge>,
    ready_events: Arc<Histogram>,
    loop_latency: Arc<Histogram>,
    wakeups: Arc<Counter>,
    timer_fires: Arc<Counter>,
}

impl ReactorMetrics {
    fn register(registry: &Registry) -> ReactorMetrics {
        ReactorMetrics {
            registered_fds: registry.gauge(
                "reactor_registered_fds",
                "File descriptors registered with the reactor (listener + wake pipe + connections)",
                &[],
            ),
            ready_events: registry.histogram(
                "reactor_ready_events_per_wake",
                "Ready events delivered per epoll_wait return",
                &[],
            ),
            loop_latency: registry.histogram(
                "reactor_loop_latency_nanoseconds",
                "Time the event loop spends processing between two epoll_wait calls",
                &[],
            ),
            wakeups: registry.counter(
                "reactor_wakeups_total",
                "Times the event loop returned from epoll_wait",
                &[],
            ),
            timer_fires: registry.counter(
                "reactor_timer_fires_total",
                "Timer-wheel entries that fired (read/write/stall deadlines)",
                &[],
            ),
        }
    }
}

/// Where a connection is in its request lifecycle.
enum ConnState {
    /// Parsing; inline routes answer immediately.
    Idle,
    /// One request is in the execution pool; buffered pipelined bytes
    /// wait so responses keep arrival order.
    Executing { started: Instant, route: &'static str },
    /// A committed `200` chunked generation stream; token chunks arrive
    /// from the stream mux and flush on writability.
    Streaming { started: Instant },
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes.
    buf: Vec<u8>,
    /// Rendered-but-unflushed response bytes.
    out: Vec<u8>,
    written: usize,
    state: ConnState,
    /// Edge-triggered write readiness: cleared on `WouldBlock`, set again
    /// by the next `EPOLLOUT` edge.
    can_write: bool,
    /// The current request asked for `Connection: close` (or the server
    /// is draining).
    wants_close: bool,
    /// No more output will be produced; close once `out` drains.
    finished: bool,
    /// Remove this connection at the next reap point.
    closed: bool,
    peer_closed: bool,
    read_generation: u64,
    write_generation: u64,
    stall_generation: u64,
    /// A chaos `conn_stall` is parked on the timer wheel.
    stalled: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::with_capacity(1024),
            out: Vec::new(),
            written: 0,
            state: ConnState::Idle,
            can_write: true,
            wants_close: false,
            finished: false,
            closed: false,
            peer_closed: false,
            read_generation: 0,
            write_generation: 0,
            stall_generation: 0,
            stalled: false,
        }
    }

    fn out_drained(&self) -> bool {
        self.written == self.out.len()
    }
}

/// A parsed request handed to the execution pool.
enum ExecJob {
    Infer { conn: u64, request: HttpRequest },
    Generate { conn: u64, request: HttpRequest },
}

/// What flows back to the reactor thread from the execution pool and the
/// stream mux, through the completion queue + self-pipe wake.
enum Completion {
    /// A complete response for the connection's in-flight request.
    Response { conn: u64, resp: Response },
    /// An admitted generation whose first event was a fatal zero-token
    /// finish: answer a typed rejection instead of a `200` stream.
    StreamReject { conn: u64, finish: FinishReason },
    /// First real event arrived: commit the `200` chunked head.
    StreamOpen { conn: u64, trace: Option<TraceId> },
    /// One NDJSON token event to append as a chunk.
    StreamChunk { conn: u64, json: String },
    /// Stream over: append the terminal chunk and close after flush.
    StreamClose { conn: u64 },
}

/// Completion channel: a plain mutexed queue (many producers, the
/// reactor as sole consumer) plus the self-pipe to interrupt
/// `epoll_wait`.
#[derive(Clone)]
struct Poster {
    completions: Arc<Mutex<VecDeque<Completion>>>,
    wake: WakeHandle,
}

impl Poster {
    fn send(&self, completion: Completion) {
        let first = {
            let mut queue = self.completions.lock().expect("completion lock");
            queue.push_back(completion);
            queue.len() == 1
        };
        // Coalesce wakes: only the empty→non-empty transition needs to
        // interrupt epoll_wait; the reactor drains the whole queue per
        // loop iteration anyway.
        if first {
            self.wake.wake();
        }
    }
}

/// One live generation owned by the stream mux: the engine-side event
/// receiver plus everything whose lifetime equals the stream's (the
/// admission slot and root span ride inside [`StreamState`]).
struct MuxEntry {
    conn: u64,
    stream: StreamState,
    /// The first event decides `200`-vs-rejection; set once delivered.
    opened: bool,
}

/// The stream mux: one thread, total, for every active generation
/// stream. Round-robins `try_recv` over the entries and forwards events
/// to the reactor as completions; parks briefly when all streams are
/// quiet. Dropping an entry drops its receiver — the engine's next send
/// fails, retiring the sequence and freeing its KV pages.
struct StreamMux {
    state: Mutex<MuxState>,
    wakeup: Condvar,
    poster: Poster,
}

struct MuxState {
    entries: Vec<MuxEntry>,
    shutdown: bool,
}

impl StreamMux {
    fn new(poster: Poster) -> StreamMux {
        StreamMux {
            state: Mutex::new(MuxState { entries: Vec::new(), shutdown: false }),
            wakeup: Condvar::new(),
            poster,
        }
    }

    /// Adopt an admitted stream (called from an exec worker).
    fn add(&self, conn: u64, stream: StreamState) {
        let mut state = self.state.lock().expect("mux lock");
        state.entries.push(MuxEntry { conn, stream, opened: false });
        self.wakeup.notify_one();
    }

    /// Drop a connection's stream, if any (client gone or chaos-killed):
    /// releases the admission slot and the engine-side receiver.
    fn cancel(&self, conn: u64) {
        let mut state = self.state.lock().expect("mux lock");
        state.entries.retain(|e| e.conn != conn);
    }

    fn shutdown(&self) {
        self.state.lock().expect("mux lock").shutdown = true;
        self.wakeup.notify_all();
    }

    fn run(&self) {
        let mut state = self.state.lock().expect("mux lock");
        loop {
            if state.shutdown {
                return;
            }
            if state.entries.is_empty() {
                state = self.wakeup.wait(state).expect("mux lock");
                continue;
            }
            let mut progressed = false;
            let mut i = 0;
            while i < state.entries.len() {
                if self.pump(&mut state.entries[i]) {
                    state.entries.remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                // All streams quiet: park briefly instead of spinning.
                let (s, _) =
                    self.wakeup.wait_timeout(state, Duration::from_micros(500)).expect("mux lock");
                state = s;
            }
        }
    }

    /// Drain one entry's currently-available events. Returns `true` when
    /// the entry is finished and must be removed.
    fn pump(&self, entry: &mut MuxEntry) -> bool {
        loop {
            match entry.stream.events.try_recv() {
                Ok(event) => {
                    if !entry.opened {
                        entry.opened = true;
                        if let TokenEvent::Done { finish, tokens: 0 } = &event {
                            if matches!(
                                finish,
                                FinishReason::Deadline
                                    | FinishReason::OutOfPages
                                    | FinishReason::Rejected
                            ) {
                                self.poster.send(Completion::StreamReject {
                                    conn: entry.conn,
                                    finish: *finish,
                                });
                                return true;
                            }
                        }
                        self.poster.send(Completion::StreamOpen {
                            conn: entry.conn,
                            trace: entry.stream.trace,
                        });
                    }
                    let done = if let TokenEvent::Done { finish, .. } = &event {
                        if let Some(span) = entry.stream.span.as_mut() {
                            span.attr_str("finish", finish.as_str());
                        }
                        true
                    } else {
                        false
                    };
                    self.poster.send(Completion::StreamChunk {
                        conn: entry.conn,
                        json: event_json(&event),
                    });
                    if done {
                        self.poster.send(Completion::StreamClose { conn: entry.conn });
                        return true;
                    }
                }
                Err(crossbeam::channel::TryRecvError::Empty) => return false,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    // Engine vanished mid-stream: terminate the chunk
                    // framing (or answer 503 if nothing was committed).
                    if entry.opened {
                        self.poster.send(Completion::StreamClose { conn: entry.conn });
                    } else {
                        self.poster.send(Completion::Response {
                            conn: entry.conn,
                            resp: error_body(503, "generation engine is gone"),
                        });
                    }
                    return true;
                }
            }
        }
    }
}

/// The running reactor driver, as seen by [`HttpServer`].
pub(super) struct ReactorDriver {
    wake: WakeHandle,
    reactor: Option<JoinHandle<()>>,
    exec_workers: Vec<JoinHandle<()>>,
    mux_thread: Option<JoinHandle<()>>,
}

impl ReactorDriver {
    pub(super) fn start(
        listener: TcpListener,
        shared: &Arc<ServerShared>,
    ) -> std::io::Result<ReactorDriver> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        let wake_pipe = WakePipe::new()?;
        let wake = wake_pipe.handle();
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(wake_pipe.read_fd(), EPOLLIN, TOKEN_WAKE)?;

        let poster =
            Poster { completions: Arc::new(Mutex::new(VecDeque::new())), wake: wake.clone() };
        let mux = Arc::new(StreamMux::new(poster.clone()));
        let exec: Arc<WorkQueue<ExecJob>> =
            Arc::new(WorkQueue::new(shared.config.pending_connections));

        let mut exec_workers = Vec::new();
        for i in 0..shared.config.workers {
            let shared = shared.clone();
            let exec = exec.clone();
            let poster = poster.clone();
            let mux = mux.clone();
            exec_workers.push(
                std::thread::Builder::new()
                    .name(format!("tt-http-exec-{i}"))
                    .spawn(move || exec_loop(&shared, &exec, &poster, &mux))
                    .expect("spawning http exec worker"),
            );
        }
        let mux_thread = {
            let mux = mux.clone();
            std::thread::Builder::new()
                .name("tt-http-mux".into())
                .spawn(move || mux.run())
                .expect("spawning http stream mux")
        };
        let reactor_thread = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("tt-http-reactor".into())
                .spawn(move || {
                    Reactor {
                        epoll,
                        listener: Some(listener),
                        wake_pipe,
                        conns: HashMap::new(),
                        next_token: TOKEN_FIRST_CONN,
                        wheel: TimerWheel::new(Instant::now()),
                        metrics: ReactorMetrics::register(&shared.registry),
                        completions: poster.completions.clone(),
                        exec,
                        mux,
                        shared,
                    }
                    .run()
                })
                .expect("spawning http reactor")
        };

        Ok(ReactorDriver {
            wake,
            reactor: Some(reactor_thread),
            exec_workers,
            mux_thread: Some(mux_thread),
        })
    }
}

impl ConnectionDriver for ReactorDriver {
    fn begin_shutdown(&self) {
        self.wake.wake();
    }

    fn join(&mut self) {
        // The reactor closes the exec queue and shuts the mux down as it
        // exits, so the join order below cannot deadlock.
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        for worker in self.exec_workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(mux) = self.mux_thread.take() {
            let _ = mux.join();
        }
    }
}

/// Execution-pool worker: runs the blocking half of a request (engine
/// inference, generation admission) off the reactor thread.
fn exec_loop(
    shared: &Arc<ServerShared>,
    exec: &WorkQueue<ExecJob>,
    poster: &Poster,
    mux: &StreamMux,
) {
    while let Some(job) = exec.pop() {
        // Chaos injection point: a stalled worker (GC pause, noisy
        // neighbor, page fault storm). The request it holds waits; the
        // reactor keeps serving every other connection, and admission
        // control sees the resulting queue-wait inflation.
        if let Some(stall) = tt_chaos::worker_stall() {
            std::thread::sleep(stall);
        }
        match job {
            ExecJob::Infer { conn, request } => {
                let resp = infer_route(&request, shared);
                poster.send(Completion::Response { conn, resp });
            }
            ExecJob::Generate { conn, request } => match generate_admit(&request, shared) {
                GenAdmission::Plain(resp) => poster.send(Completion::Response { conn, resp }),
                // The stream (owning the admission slot and root span)
                // moves to the mux; this worker is free again — a stream
                // in progress pins no thread.
                GenAdmission::Stream(stream) => mux.add(conn, stream),
            },
        }
    }
}

/// The event loop itself. Owned by the reactor thread; every socket and
/// timer lives here, so nothing below needs a lock.
struct Reactor {
    epoll: Epoll,
    listener: Option<TcpListener>,
    wake_pipe: WakePipe,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    wheel: TimerWheel,
    metrics: ReactorMetrics,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    exec: Arc<WorkQueue<ExecJob>>,
    mux: Arc<StreamMux>,
    shared: Arc<ServerShared>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = vec![EpollEvent::zeroed(); 256];
        let mut draining = false;
        self.update_fd_gauge();
        loop {
            let timeout = self.wheel.timeout();
            let n = self.epoll.wait(&mut events, timeout).unwrap_or_default();
            let woke = Instant::now();
            self.metrics.wakeups.inc();
            self.metrics.ready_events.record(n as u64);

            let mut touched: Vec<u64> = Vec::with_capacity(n);
            for event in events.iter().take(n) {
                // Copy out of the (packed) event before use.
                let ev = *event;
                let (mask, token) = (ev.events, ev.data);
                match token {
                    TOKEN_LISTENER => self.accept_burst(),
                    TOKEN_WAKE => self.wake_pipe.drain(),
                    token => {
                        self.conn_event(token, mask);
                        touched.push(token);
                    }
                }
            }
            self.drain_completions(&mut touched);
            self.fire_timers(&mut touched);
            for token in touched {
                self.reap(token);
            }

            if self.shared.shutting_down.load(Ordering::SeqCst) {
                self.begin_drain(&mut draining);
                if self.conns.is_empty() {
                    break;
                }
            }
            // Loop latency: the stretch spent processing (everything
            // between returning from epoll_wait and re-entering it).
            self.metrics.loop_latency.record(woke.elapsed().as_nanos() as u64);
        }
        // Unblock the exec pool and the mux so their threads exit.
        self.exec.close();
        self.mux.shutdown();
    }

    fn update_fd_gauge(&self) {
        let base = 1 + usize::from(self.listener.is_some()); // wake pipe (+ listener)
        self.metrics.registered_fds.set((self.conns.len() + base) as f64);
    }

    fn accept_burst(&mut self) {
        loop {
            // Scope the listener borrow to the accept call itself: the
            // match arms below need `&mut self` (readable/reap).
            let accepted = {
                let Some(listener) = &self.listener else { break };
                listener.accept()
            };
            match accepted {
                Ok((stream, _peer)) => {
                    if self.shared.shutting_down.load(Ordering::SeqCst) {
                        continue; // draining: hang up on late arrivals
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .epoll
                        .add(stream.as_raw_fd(), EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET, token)
                        .is_err()
                    {
                        continue;
                    }
                    let mut conn = Conn::new(stream);
                    self.arm_read_timer(&mut conn, token);
                    self.conns.insert(token, conn);
                    self.shared.metrics.active_connections.add(1.0);
                    // Opportunistic first read: the request bytes often
                    // land right behind the connect, so serving them now
                    // saves a full epoll round-trip per short-lived
                    // connection. Harmless when empty (WouldBlock); the
                    // registration above still reports the next edge.
                    self.readable(token, false);
                    self.reap(token);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break, // transient (EMFILE, aborted handshake)
            }
        }
        self.update_fd_gauge();
    }

    fn arm_read_timer(&mut self, conn: &mut Conn, token: u64) {
        conn.read_generation += 1;
        self.wheel.arm(TimerEntry {
            conn: token,
            kind: TimerKind::Read,
            generation: conn.read_generation,
            deadline: Instant::now() + self.shared.config.read_timeout,
        });
    }

    fn conn_event(&mut self, token: u64, mask: u32) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            conn.closed = true;
            return;
        }
        if mask & EPOLLOUT != 0 {
            conn.can_write = true;
            self.flush(token);
        }
        if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.readable(token, false);
        }
    }

    /// Pull everything the socket has, then let the state machine act on
    /// it. `resume` is set when a chaos stall just elapsed (skip drawing
    /// another stall for the same readiness burst).
    fn readable(&mut self, token: u64, resume: bool) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.closed || conn.stalled {
            return;
        }
        // Chaos injection point: the peer pauses mid-send. The reactor
        // parks the connection on the timer wheel — no thread sleeps.
        if !resume {
            if let Some(stall) = tt_chaos::conn_stall() {
                conn.stalled = true;
                conn.stall_generation += 1;
                self.wheel.arm(TimerEntry {
                    conn: token,
                    kind: TimerKind::Stall,
                    generation: conn.stall_generation,
                    deadline: Instant::now() + stall,
                });
                return;
            }
        }
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.closed = true;
                    return;
                }
            }
        }
        if matches!(conn.state, ConnState::Idle) {
            if !conn.buf.is_empty() && !conn.finished {
                // Fresh bytes reset the read clock (mirrors the threaded
                // driver's per-read socket timeout).
                self.arm_read_timer_for(token);
            }
            self.process_buffer(token);
        }
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.peer_closed {
            match conn.state {
                // An HTTP client that closed mid-stream is gone: cancel
                // the generation so its KV pages free immediately.
                ConnState::Streaming { .. } => conn.closed = true,
                ConnState::Idle if conn.out_drained() && !conn.finished => conn.closed = true,
                // Response(s) still buffered or executing: flush, then
                // close (writes to a dead peer fail and close anyway).
                _ => conn.wants_close = true,
            }
        }
    }

    fn arm_read_timer_for(&mut self, token: u64) {
        if let Some(mut conn) = self.conns.remove(&token) {
            self.arm_read_timer(&mut conn, token);
            self.conns.insert(token, conn);
        }
    }

    /// Parse-and-route loop for an `Idle` connection. Inline routes are
    /// answered on the reactor thread; blocking routes dispatch to the
    /// execution pool and pause parsing until the response comes back
    /// (pipelined bytes stay buffered so responses keep order).
    fn process_buffer(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.closed || conn.finished || !matches!(conn.state, ConnState::Idle) {
                return;
            }
            match parse_request(&conn.buf, self.shared.config.max_body_bytes) {
                ParseOutcome::Complete { request, consumed } => {
                    conn.buf.drain(..consumed);
                    // The pending read deadline belonged to this request.
                    conn.read_generation += 1;
                    let draining = self.shared.shutting_down.load(Ordering::SeqCst);
                    let close = request.wants_close() || draining;
                    conn.wants_close = close;
                    match (request.method.as_str(), request.path()) {
                        ("POST", "/v1/infer") => {
                            self.dispatch_exec(token, request, "/v1/infer");
                            return;
                        }
                        ("POST", "/v1/generate") => {
                            // Streams always close the connection.
                            self.conns.get_mut(&token).expect("conn exists").wants_close = true;
                            self.dispatch_exec(token, request, "/v1/generate");
                            return;
                        }
                        _ => {
                            let route = route_label(request.path(), &request.method);
                            let started = Instant::now();
                            let resp = dispatch(&request, &self.shared);
                            let status = resp.0;
                            self.enqueue_response(token, resp, close);
                            self.shared.metrics.observe(
                                route,
                                status,
                                started.elapsed().as_nanos() as u64,
                            );
                            if close {
                                return;
                            }
                        }
                    }
                }
                ParseOutcome::Incomplete => return,
                ParseOutcome::Invalid(reason) => {
                    let resp = error_body(400, reason);
                    self.enqueue_response(token, resp, true);
                    self.shared.metrics.observe("other", 400, 0);
                    return;
                }
                ParseOutcome::BodyTooLarge { declared } => {
                    let reason = format!(
                        "body of {declared} bytes exceeds the {}-byte limit",
                        self.shared.config.max_body_bytes
                    );
                    let resp = error_body(413, &reason);
                    self.enqueue_response(token, resp, true);
                    self.shared.metrics.observe("other", 413, 0);
                    return;
                }
            }
        }
    }

    /// Hand a blocking route to the execution pool; a full hand-off
    /// queue sheds `429` inline instead of stalling the event loop.
    fn dispatch_exec(&mut self, token: u64, request: HttpRequest, route: &'static str) {
        let started = Instant::now();
        let job = if route == "/v1/infer" {
            ExecJob::Infer { conn: token, request }
        } else {
            ExecJob::Generate { conn: token, request }
        };
        {
            let conn = self.conns.get_mut(&token).expect("conn exists");
            conn.state = ConnState::Executing { started, route };
        }
        if let Err(_job) = self.exec.try_push(job) {
            let resp = shed_response(
                &self.shared,
                429,
                "capacity",
                "request hand-off queue is full; retry later",
            );
            let status = resp.0;
            let close = {
                let conn = self.conns.get_mut(&token).expect("conn exists");
                conn.state = ConnState::Idle;
                conn.wants_close
            };
            self.enqueue_response(token, resp, close);
            self.shared.metrics.observe(route, status, started.elapsed().as_nanos() as u64);
            if !close {
                self.arm_read_timer_for(token);
                self.process_buffer(token);
            }
        }
    }

    /// Render a complete response into the connection's output buffer
    /// and start flushing. The `conn_drop` chaos point applies here —
    /// per response, exactly like the threaded driver's write path.
    fn enqueue_response(&mut self, token: u64, resp: Response, close: bool) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let (status, ct, body, extra) = resp;
        let head = render_head(status, &ct, body.len(), &extra, close);
        if tt_chaos::conn_drop() {
            // Injected mid-response connection loss: a partial head goes
            // out, then the socket dies.
            let cut = head.len().min(16);
            let _ = conn.stream.write_all(&head.as_bytes()[..cut]);
            let _ = conn.stream.shutdown(Shutdown::Both);
            conn.closed = true;
            return;
        }
        conn.out.extend_from_slice(head.as_bytes());
        conn.out.extend_from_slice(&body);
        if close {
            conn.finished = true;
        }
        self.flush(token);
    }

    /// Append one chunked-transfer-encoded NDJSON event. The `conn_drop`
    /// chaos point applies per chunk, mirroring the threaded driver.
    fn enqueue_chunk(&mut self, token: u64, data: &[u8]) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if tt_chaos::conn_drop() {
            let _ = conn.stream.shutdown(Shutdown::Both);
            conn.closed = true;
            return;
        }
        conn.out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
        conn.out.extend_from_slice(data);
        conn.out.extend_from_slice(b"\r\n");
        self.flush(token);
    }

    /// Write as much buffered output as the socket accepts. `WouldBlock`
    /// clears write readiness and arms the write deadline; a drained
    /// buffer on a finished connection closes it.
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.closed {
            return;
        }
        while conn.can_write && conn.written < conn.out.len() {
            match conn.stream.write(&conn.out[conn.written..]) {
                Ok(0) => {
                    conn.closed = true;
                    return;
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    conn.can_write = false;
                    conn.write_generation += 1;
                    self.wheel.arm(TimerEntry {
                        conn: token,
                        kind: TimerKind::Write,
                        generation: conn.write_generation,
                        deadline: Instant::now() + self.shared.config.write_timeout,
                    });
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.closed = true;
                    return;
                }
            }
        }
        if conn.out_drained() && !conn.out.is_empty() {
            conn.out.clear();
            conn.written = 0;
            conn.write_generation += 1; // cancel the write deadline
            if conn.finished {
                conn.closed = true;
            }
        }
    }

    /// Apply every queued completion from the exec pool and stream mux.
    fn drain_completions(&mut self, touched: &mut Vec<u64>) {
        let pending: Vec<Completion> = {
            let mut queue = self.completions.lock().expect("completion lock");
            queue.drain(..).collect()
        };
        for completion in pending {
            match completion {
                Completion::Response { conn: token, resp } => {
                    touched.push(token);
                    if !self.conns.contains_key(&token) {
                        continue; // connection died while the pool worked
                    }
                    let (route, started) = {
                        let conn = self.conns.get_mut(&token).expect("conn exists");
                        match conn.state {
                            ConnState::Executing { started, route } => (route, started),
                            _ => ("other", Instant::now()),
                        }
                    };
                    let status = resp.0;
                    let draining = self.shared.shutting_down.load(Ordering::SeqCst);
                    let close = {
                        let conn = self.conns.get_mut(&token).expect("conn exists");
                        conn.state = ConnState::Idle;
                        conn.wants_close || draining
                    };
                    self.enqueue_response(token, resp, close);
                    self.shared.metrics.observe(route, status, started.elapsed().as_nanos() as u64);
                    if !close {
                        // Keep-alive: resume the parse loop over any
                        // pipelined bytes, and restart the idle clock.
                        self.arm_read_timer_for(token);
                        self.process_buffer(token);
                    }
                }
                Completion::StreamReject { conn: token, finish } => {
                    touched.push(token);
                    if !self.conns.contains_key(&token) {
                        continue;
                    }
                    let resp = reject_response(&finish, &self.shared)
                        .unwrap_or_else(|| error_body(503, "generation stream rejected"));
                    let (started, status) = {
                        let conn = self.conns.get_mut(&token).expect("conn exists");
                        let started = match conn.state {
                            ConnState::Executing { started, .. } => started,
                            _ => Instant::now(),
                        };
                        conn.state = ConnState::Idle;
                        (started, resp.0)
                    };
                    self.enqueue_response(token, resp, true);
                    self.shared.metrics.observe(
                        "/v1/generate",
                        status,
                        started.elapsed().as_nanos() as u64,
                    );
                }
                Completion::StreamOpen { conn: token, trace } => {
                    touched.push(token);
                    let Some(conn) = self.conns.get_mut(&token) else {
                        self.mux.cancel(token);
                        continue;
                    };
                    if conn.closed {
                        self.mux.cancel(token);
                        continue;
                    }
                    let started = match conn.state {
                        ConnState::Executing { started, .. } => started,
                        _ => Instant::now(),
                    };
                    let head = stream_head(trace);
                    if tt_chaos::conn_drop() {
                        let cut = head.len().min(16);
                        let _ = conn.stream.write_all(&head.as_bytes()[..cut]);
                        let _ = conn.stream.shutdown(Shutdown::Both);
                        conn.closed = true;
                        self.mux.cancel(token);
                        self.shared.metrics.observe(
                            "/v1/generate",
                            200,
                            started.elapsed().as_nanos() as u64,
                        );
                        continue;
                    }
                    conn.state = ConnState::Streaming { started };
                    conn.out.extend_from_slice(head.as_bytes());
                    self.flush(token);
                }
                Completion::StreamChunk { conn: token, json } => {
                    touched.push(token);
                    if self.conns.get(&token).map(|c| c.closed).unwrap_or(true) {
                        self.mux.cancel(token);
                        continue;
                    }
                    self.enqueue_chunk(token, json.as_bytes());
                    if self.conns.get(&token).map(|c| c.closed).unwrap_or(true) {
                        // The chunk-level conn_drop chaos fired (or the
                        // write died): cancel so the engine reclaims the
                        // sequence's pages.
                        self.mux.cancel(token);
                    }
                }
                Completion::StreamClose { conn: token } => {
                    touched.push(token);
                    let Some(conn) = self.conns.get_mut(&token) else { continue };
                    if conn.closed {
                        continue;
                    }
                    let started = match conn.state {
                        ConnState::Streaming { started } | ConnState::Executing { started, .. } => {
                            started
                        }
                        ConnState::Idle => Instant::now(),
                    };
                    conn.out.extend_from_slice(b"0\r\n\r\n");
                    conn.finished = true;
                    self.shared.metrics.observe(
                        "/v1/generate",
                        200,
                        started.elapsed().as_nanos() as u64,
                    );
                    self.flush(token);
                }
            }
        }
    }

    /// Fire due timer-wheel entries: read/idle deadlines, write
    /// deadlines, chaos stall resumes.
    fn fire_timers(&mut self, touched: &mut Vec<u64>) {
        let mut fired = Vec::new();
        self.wheel.advance(Instant::now(), &mut fired);
        for entry in fired {
            let token = entry.conn;
            let Some(conn) = self.conns.get_mut(&token) else { continue };
            let live = match entry.kind {
                TimerKind::Read => entry.generation == conn.read_generation,
                TimerKind::Write => entry.generation == conn.write_generation,
                TimerKind::Stall => entry.generation == conn.stall_generation,
            };
            if !live || conn.closed {
                continue;
            }
            self.metrics.timer_fires.inc();
            touched.push(token);
            match entry.kind {
                TimerKind::Read => {
                    if !matches!(conn.state, ConnState::Idle) {
                        continue; // request made it out of the parser
                    }
                    if conn.buf.is_empty() {
                        // Idle keep-alive expiry: close silently.
                        conn.closed = conn.out_drained();
                        conn.finished = true;
                    } else {
                        // Slow-loris / mid-request stall: tell the peer
                        // before hanging up.
                        let resp = error_body(408, "timed out mid-request");
                        self.enqueue_response(token, resp, true);
                        self.shared.metrics.observe("other", 408, 0);
                    }
                }
                TimerKind::Write => {
                    // The peer stopped reading our response: abandon it.
                    conn.closed = true;
                }
                TimerKind::Stall => {
                    conn.stalled = false;
                    self.readable(token, true);
                }
            }
        }
    }

    /// Remove a connection marked closed: drop the socket (deregistering
    /// it from epoll), cancel any stream, update gauges.
    fn reap(&mut self, token: u64) {
        let remove = self.conns.get(&token).map(|c| c.closed).unwrap_or(false);
        if !remove {
            return;
        }
        let conn = self.conns.remove(&token).expect("conn exists");
        if matches!(conn.state, ConnState::Streaming { .. } | ConnState::Executing { .. }) {
            // A live generation stream (or one still being admitted)
            // dies with its connection; dropping the mux entry drops the
            // engine-side receiver, freeing the sequence's KV pages.
            self.mux.cancel(token);
        }
        self.shared.metrics.active_connections.add(-1.0);
        self.update_fd_gauge();
        drop(conn);
    }

    /// First pass after the shutdown flag flips: stop accepting (drop —
    /// and thereby close — the listener) and close connections with
    /// nothing in flight. Executing/streaming connections drain.
    fn begin_drain(&mut self, draining: &mut bool) {
        if !*draining {
            *draining = true;
            if let Some(listener) = self.listener.take() {
                let _ = self.epoll.delete(listener.as_raw_fd());
            }
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                matches!(c.state, ConnState::Idle) && c.out_drained() && c.buf.is_empty()
            })
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.closed = true;
            }
            self.reap(token);
        }
        self.update_fd_gauge();
    }
}
