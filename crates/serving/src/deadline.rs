//! One definition of "expired" — deadline semantics shared by the
//! simulators and the live path.
//!
//! The multi-model simulator ([`crate::multi_model`]) and the serving
//! simulator's Lazy trigger ([`crate::simulator`]) each grew their own
//! inline deadline arithmetic; the live HTTP path adds a third consumer
//! with real wall-clock deadlines. This module is the single home for
//! both flavors:
//!
//! - [`Deadline`] wraps a wall-clock [`Instant`] for the live path
//!   (`x-tt-deadline-ms` → admission → engine queue → pre-execute check);
//! - the `sim_*` helpers operate on the simulators' `f64` seconds clock,
//!   keeping the expiry rule (`now − arrival > slo`, strictly) identical
//!   to what the shedding experiments validated.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::request::Request;

/// A wall-clock deadline carried by a live request from HTTP admission
/// through the engine queue to batch execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// Deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline { at: Instant::now() + budget }
    }

    /// Deadline at an absolute instant.
    pub fn at(at: Instant) -> Self {
        Deadline { at }
    }

    /// The absolute expiry instant.
    pub fn instant(&self) -> Instant {
        self.at
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry, `None` if already expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.checked_duration_since(Instant::now())
    }

    /// How far past the deadline we are, `None` if not yet expired.
    pub fn overrun(&self) -> Option<Duration> {
        Instant::now().checked_duration_since(self.at)
    }
}

/// Absolute deadline of a simulated request: arrival plus its class SLO.
/// This is the EDF key the multi-model executor orders queue fronts by.
pub fn sim_deadline(arrival: f64, slo: f64) -> f64 {
    arrival + slo
}

/// Whether a simulated request is expired at `now`. Strictly past —
/// a request exactly at its deadline is still servable, matching the
/// shedding rule the multi-model goodput experiments validated.
pub fn sim_expired(now: f64, arrival: f64, slo: f64) -> bool {
    now - arrival > slo
}

/// Drop every queued request whose SLO expired before service; returns
/// how many were shed.
pub fn shed_expired(queue: &mut VecDeque<Request>, now: f64, slo: f64) -> usize {
    let before = queue.len();
    queue.retain(|r| !sim_expired(now, r.arrival, slo));
    before - queue.len()
}

/// When the Lazy trigger must fire for a queue whose front arrived at
/// `front_arrival`: the batching timeout, tightened so that waiting plus
/// the estimated execution time `est` never pushes the front request past
/// half its SLO (paper §5's delayed-batching guard).
pub fn lazy_fire_deadline(front_arrival: f64, timeout: f64, slo: f64, est: f64) -> f64 {
    (front_arrival + timeout).min(front_arrival + (slo / 2.0 - est).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_deadline_expires() {
        let d = Deadline::within(Duration::from_millis(20));
        assert!(!d.expired());
        assert!(d.remaining().is_some());
        assert!(d.overrun().is_none());
        std::thread::sleep(Duration::from_millis(30));
        assert!(d.expired());
        assert!(d.remaining().is_none());
        assert!(d.overrun().is_some());
    }

    #[test]
    fn past_instant_is_expired_immediately() {
        let d = Deadline::at(Instant::now());
        assert!(d.expired());
    }

    #[test]
    fn sim_expiry_is_strictly_past_the_slo() {
        assert!(!sim_expired(1.0, 0.5, 0.5), "exactly at the deadline is still servable");
        assert!(sim_expired(1.0 + 1e-9, 0.5, 0.5));
        assert_eq!(sim_deadline(0.5, 0.5), 1.0);
    }

    #[test]
    fn shed_expired_drops_only_the_dead() {
        let mut q: VecDeque<Request> =
            (0..4).map(|i| Request::new(i, 10, i as f64 * 0.1)).collect();
        // At now=0.35 with slo=0.2: arrivals 0.0 and 0.1 are expired
        // (ages 0.35, 0.25), arrival 0.2 is exactly at the deadline
        // (age 0.15 ≤ 0.2 — kept), arrival 0.3 is live.
        let shed = shed_expired(&mut q, 0.35, 0.2);
        assert_eq!(shed, 2);
        assert_eq!(q.len(), 2);
        assert!(q.iter().all(|r| r.arrival >= 0.2));
    }

    #[test]
    fn lazy_deadline_is_clamped_by_the_slo_guard() {
        // Generous timeout, tight SLO: the guard dominates.
        let d = lazy_fire_deadline(1.0, 10.0, 0.4, 0.15);
        assert!((d - 1.05).abs() < 1e-12, "1.0 + (0.2 - 0.15) = 1.05, got {d}");
        // Estimate already blows half the SLO: fire immediately.
        assert_eq!(lazy_fire_deadline(1.0, 10.0, 0.4, 0.5), 1.0);
        // Loose SLO: the plain timeout wins.
        assert_eq!(lazy_fire_deadline(1.0, 0.05, 100.0, 0.01), 1.05);
    }
}
