//! Latency accumulation: average / min / max / percentiles.

/// Online latency statistics (stores samples; serving runs are bounded).
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<f64>,
}

impl LatencyStats {
    /// Empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample, seconds.
    pub fn record(&mut self, latency: f64) {
        debug_assert!(latency >= 0.0, "negative latency {latency}");
        self.samples.push(latency);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Minimum, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Maximum, or 0 when empty.
    pub fn max(&self) -> f64 {
        self.samples.iter().cloned().fold(0.0, f64::max)
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100), nearest-rank; 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_min_max() {
        let mut s = LatencyStats::new();
        for v in [3.0, 1.0, 2.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn empty_stats_report_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let mut s = LatencyStats::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        let p50 = s.percentile(50.0);
        assert!((49.0..=52.0).contains(&p50), "median {p50}");
    }
}
