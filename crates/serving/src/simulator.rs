//! Discrete-event simulation of the serving loop (paper Fig. 2, §5).
//!
//! A single GPU serves a message queue: when the trigger strategy fires,
//! the batch scheduler partitions the queued requests and the batches
//! execute back to back, each costing `cached_cost[max padded length][batch
//! size]` of simulated device time. Request latency = completion − arrival.
//!
//! The two trigger strategies of paper §5:
//!
//! - **hungry** — "when the runtime is idle, we immediately start the batch
//!   scheduler"; right for high request pressure (all Fig. 12 measurements).
//! - **lazy** — delayed batching: fire when the queue reaches the maximum
//!   batch size, when a timeout expires, or when the front request's age
//!   plus the estimated execution time of the queued batch would exceed
//!   half the latency SLO.

use std::collections::VecDeque;

use crate::cache::ResponseCache;
use crate::cost_table::CachedCost;
use crate::deadline::lazy_fire_deadline;
use crate::request::Request;
use crate::scheduler::BatchScheduler;
use crate::stats::LatencyStats;

/// When the batch scheduler is invoked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Schedule whenever the GPU is idle and the queue is non-empty.
    Hungry,
    /// Delayed batching with a timeout and an SLO guard.
    Lazy {
        /// Maximum time the first queued request may wait before
        /// scheduling fires regardless of queue depth.
        timeout: f64,
        /// Latency objective; scheduling fires when waiting longer would
        /// push the front request past `slo / 2` including its estimated
        /// execution time.
        slo: f64,
    },
}

/// Simulation parameters.
pub struct ServingConfig<'a> {
    /// The batch scheduler under test.
    pub scheduler: &'a dyn BatchScheduler,
    /// Trigger strategy.
    pub trigger: Trigger,
    /// Charge every batch at the model's maximum padded length
    /// (TF-serving-style static shapes).
    pub pad_to_max: bool,
    /// Response-cache capacity; `None` disables caching (as in the paper's
    /// measurements).
    pub cache_capacity: Option<usize>,
}

/// Outcome of one simulated serving run.
#[derive(Debug)]
pub struct ServingReport {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Requests that arrived.
    pub arrivals: usize,
    /// Requests served before the simulation cutoff.
    pub completed: usize,
    /// Responses per second, measured over max(workload duration, drain
    /// time) — beyond saturation this plateaus at service capacity, which
    /// is exactly the plateau of paper Fig. 12.
    pub response_throughput: f64,
    /// Latency statistics over completed requests.
    pub latency: LatencyStats,
    /// Whether the server could not keep up (backlog at cutoff, or drain
    /// ran far past the workload window — the paper's "+∞ latency" rows).
    pub saturated: bool,
    /// Largest queue depth observed.
    pub peak_queue: usize,
    /// Requests still queued at cutoff.
    pub final_queue: usize,
    /// Response-cache hit ratio (0 when disabled).
    pub cache_hit_ratio: f64,
}

/// How long past the workload window the simulator keeps draining the
/// backlog before declaring the run saturated and cutting off.
const DRAIN_FACTOR: f64 = 4.0;

/// Run the serving simulation over a request trace (sorted by arrival, as
/// produced by [`crate::request::WorkloadSpec::generate`]). `duration` is
/// the workload window the trace was generated for.
pub fn simulate(
    requests: &[Request],
    costs: &CachedCost,
    config: &ServingConfig<'_>,
    duration: f64,
) -> ServingReport {
    debug_assert!(
        requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "trace must be sorted"
    );
    let cutoff = duration * DRAIN_FACTOR;
    let mut cache = config.cache_capacity.map(ResponseCache::new);

    let mut clock = 0.0f64;
    let mut next_arrival = 0usize;
    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut latency = LatencyStats::new();
    let mut completed = 0usize;
    let mut peak_queue = 0usize;
    let mut last_completion = 0.0f64;

    // Pull every arrival with time ≤ clock into the queue (through the
    // cache, which answers repeats instantly).
    let pull = |clock: f64,
                next_arrival: &mut usize,
                queue: &mut VecDeque<Request>,
                cache: &mut Option<ResponseCache>,
                latency: &mut LatencyStats,
                completed: &mut usize| {
        while *next_arrival < requests.len() && requests[*next_arrival].arrival <= clock {
            let r = requests[*next_arrival];
            *next_arrival += 1;
            if let Some(c) = cache.as_mut() {
                if c.get(r.content_key).is_some() {
                    latency.record(0.0);
                    *completed += 1;
                    continue;
                }
            }
            queue.push_back(r);
        }
    };

    loop {
        pull(clock, &mut next_arrival, &mut queue, &mut cache, &mut latency, &mut completed);
        if queue.is_empty() {
            match requests.get(next_arrival) {
                Some(r) => {
                    clock = r.arrival;
                    continue;
                }
                None => break,
            }
        }
        if clock > cutoff {
            break;
        }

        // Trigger strategy: possibly wait for more requests.
        if let Trigger::Lazy { timeout, slo } = config.trigger {
            let front = queue.front().expect("non-empty queue");
            let est = costs.batch_cost(
                queue.iter().map(|r| r.len).max().expect("non-empty"),
                queue.len().min(costs.max_batch()),
            );
            let full = queue.len() >= costs.max_batch();
            let deadline = lazy_fire_deadline(front.arrival, timeout, slo, est);
            if !full && clock < deadline {
                // Wait until the deadline or the next arrival, whichever
                // comes first, then re-evaluate.
                let next_t = requests.get(next_arrival).map(|r| r.arrival).unwrap_or(f64::INFINITY);
                clock = deadline.min(next_t);
                continue;
            }
        }

        // Schedule the current queue contents and execute every batch.
        let snapshot: Vec<Request> = queue.iter().copied().collect();
        let batching = config.scheduler.schedule(&snapshot, costs);
        debug_assert_eq!(
            batching.iter().map(|b| b.len()).sum::<usize>(),
            snapshot.len(),
            "scheduler must cover the queue"
        );
        queue.clear();
        peak_queue = peak_queue.max(snapshot.len());

        for batch in &batching {
            let count = batch.len();
            let max_len = if config.pad_to_max {
                costs.max_len()
            } else {
                batch.iter().map(|&i| snapshot[i].len).max().expect("non-empty batch")
            };
            let service = costs.batch_cost(max_len, count);
            clock += service;
            for &i in batch {
                let r = &snapshot[i];
                latency.record(clock - r.arrival);
                completed += 1;
                last_completion = clock;
                if let Some(c) = cache.as_mut() {
                    c.put(r.content_key, r.id as u64);
                }
            }
            if clock > cutoff {
                break;
            }
        }
    }

    let final_queue = queue.len() + (requests.len() - next_arrival);
    let window = duration.max(last_completion);
    ServingReport {
        scheduler: config.scheduler.name(),
        arrivals: requests.len(),
        completed,
        response_throughput: completed as f64 / window,
        saturated: final_queue > 0 || last_completion > duration * 1.25,
        latency,
        peak_queue,
        final_queue,
        cache_hit_ratio: cache.map(|c| c.hit_ratio()).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{LengthDist, WorkloadSpec};
    use crate::scheduler::{DpScheduler, NaiveBatchScheduler, NoBatchScheduler, PadToMaxScheduler};

    /// Launch overhead + padded-token cost, batch-sublinear enough that
    /// batching equal lengths pays off.
    fn table() -> CachedCost {
        CachedCost::from_fn(512, 20, 8, |len, b| 1.0e-3 + 8.0e-6 * (len * b) as f64)
    }

    fn workload(rate: f64, seed: u64) -> Vec<Request> {
        WorkloadSpec {
            rate_per_sec: rate,
            duration: 20.0,
            lengths: LengthDist::Uniform { lo: 5, hi: 500 },
            seed,
        }
        .generate()
    }

    fn run(rate: f64, sched: &dyn BatchScheduler, pad: bool) -> ServingReport {
        let reqs = workload(rate, 11);
        let cfg = ServingConfig {
            scheduler: sched,
            trigger: Trigger::Hungry,
            pad_to_max: pad,
            cache_capacity: None,
        };
        simulate(&reqs, &table(), &cfg, 20.0)
    }

    #[test]
    fn low_rate_everything_completes_quickly() {
        let r = run(10.0, &NoBatchScheduler, false);
        assert_eq!(r.completed, r.arrivals);
        assert!(!r.saturated);
        assert!(r.latency.max() < 0.5, "max latency {}", r.latency.max());
    }

    #[test]
    fn overload_saturates_and_throughput_plateaus() {
        let a = run(600.0, &NoBatchScheduler, false);
        let b = run(1200.0, &NoBatchScheduler, false);
        assert!(a.saturated && b.saturated);
        // Plateau: doubling the offered load barely moves the response rate.
        let ratio = b.response_throughput / a.response_throughput;
        assert!((0.8..1.2).contains(&ratio), "plateau ratio {ratio}");
    }

    #[test]
    fn dp_scheduler_sustains_higher_rates_than_naive_and_nobatch() {
        // Paper Fig. 12 ordering: DP > NoBatch > Naive under high length
        // variance (naive pays padding for mixing 5s with 500s).
        let rate = 400.0;
        let dp = run(rate, &DpScheduler, false);
        let naive = run(rate, &NaiveBatchScheduler, false);
        let nobatch = run(rate, &NoBatchScheduler, false);
        assert!(
            dp.response_throughput > nobatch.response_throughput,
            "DP {} must beat NoBatch {}",
            dp.response_throughput,
            nobatch.response_throughput
        );
        assert!(
            nobatch.response_throughput > naive.response_throughput,
            "NoBatch {} must beat Naive {} under high variance",
            nobatch.response_throughput,
            naive.response_throughput
        );
    }

    #[test]
    fn padding_to_max_is_worst() {
        let rate = 200.0;
        let pad = run(rate, &PadToMaxScheduler, true);
        let naive = run(rate, &NaiveBatchScheduler, false);
        assert!(pad.response_throughput <= naive.response_throughput + 1e-9);
    }

    #[test]
    fn dp_lowers_latency_below_saturation() {
        let rate = 150.0;
        let dp = run(rate, &DpScheduler, false);
        let nobatch = run(rate, &NoBatchScheduler, false);
        assert!(!dp.saturated);
        assert!(
            dp.latency.mean() <= nobatch.latency.mean() * 1.5,
            "DP mean {} vs NoBatch mean {}",
            dp.latency.mean(),
            nobatch.latency.mean()
        );
    }

    #[test]
    fn lazy_trigger_waits_to_fill_batches() {
        // Sparse arrivals: hungry serves each alone; lazy waits out its
        // timeout and batches more requests together.
        let reqs: Vec<Request> = (0..10).map(|i| Request::new(i, 100, i as f64 * 0.002)).collect();
        let costs = table();
        let hungry = simulate(
            &reqs,
            &costs,
            &ServingConfig {
                scheduler: &DpScheduler,
                trigger: Trigger::Hungry,
                pad_to_max: false,
                cache_capacity: None,
            },
            1.0,
        );
        let lazy = simulate(
            &reqs,
            &costs,
            &ServingConfig {
                scheduler: &DpScheduler,
                trigger: Trigger::Lazy { timeout: 0.05, slo: 1.0 },
                pad_to_max: false,
                cache_capacity: None,
            },
            1.0,
        );
        assert_eq!(hungry.completed, 10);
        assert_eq!(lazy.completed, 10);
        assert!(
            lazy.peak_queue > hungry.peak_queue,
            "lazy must accumulate a deeper queue: {} vs {}",
            lazy.peak_queue,
            hungry.peak_queue
        );
    }

    #[test]
    fn response_cache_short_circuits_repeats() {
        let mut reqs: Vec<Request> =
            (0..20).map(|i| Request::new(i, 200, i as f64 * 0.01)).collect();
        // Every other request repeats content 0.
        let repeated = reqs[0].content_key;
        for r in reqs.iter_mut().skip(1).step_by(2) {
            r.content_key = repeated;
        }
        let cfg = ServingConfig {
            scheduler: &NoBatchScheduler,
            trigger: Trigger::Hungry,
            pad_to_max: false,
            cache_capacity: Some(64),
        };
        let rep = simulate(&reqs, &table(), &cfg, 1.0);
        assert_eq!(rep.completed, 20);
        assert!(rep.cache_hit_ratio > 0.3, "hit ratio {}", rep.cache_hit_ratio);
        assert_eq!(rep.latency.min(), 0.0, "cache hits answer instantly");
    }

    #[test]
    fn latency_objective_wins_light_load_loses_heavy_load() {
        // The closed-loop insight the per-round objective hides: the
        // latency DP's smaller front batches cost total throughput, so it
        // helps when queues are short and *hurts* near saturation, where
        // backlog dominates. Both regimes are pinned.
        use crate::scheduler::LatencyDpScheduler;
        let light = 120.0;
        let dp_l = run(light, &DpScheduler, false);
        let lat_l = run(light, &LatencyDpScheduler, false);
        assert_eq!(dp_l.completed, lat_l.completed);
        assert!(
            lat_l.latency.mean() <= dp_l.latency.mean() * 1.05,
            "light load: latency DP must be competitive: {} vs {}",
            lat_l.latency.mean(),
            dp_l.latency.mean()
        );

        let heavy = 320.0;
        let dp_h = run(heavy, &DpScheduler, false);
        let lat_h = run(heavy, &LatencyDpScheduler, false);
        assert!(
            dp_h.latency.mean() <= lat_h.latency.mean() * 1.05,
            "near saturation the throughput objective wins: {} vs {}",
            dp_h.latency.mean(),
            lat_h.latency.mean()
        );
    }

    #[test]
    fn empty_workload_is_a_clean_zero() {
        let cfg = ServingConfig {
            scheduler: &DpScheduler,
            trigger: Trigger::Hungry,
            pad_to_max: false,
            cache_capacity: None,
        };
        let rep = simulate(&[], &table(), &cfg, 10.0);
        assert_eq!(rep.arrivals, 0);
        assert_eq!(rep.completed, 0);
        assert!(!rep.saturated);
    }
}
