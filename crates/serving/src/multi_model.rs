//! Multi-model serving on one GPU — the Nexus scenario the paper cites
//! (§2.2: "Nexus further designed a batching scheduler to serve multiple
//! different models on the same GPU"), combined with SLO-aware load
//! shedding.
//!
//! Several model classes share a single simulated GPU; each class has its
//! own cost table (different architectures cost differently) and queue, and
//! the executor picks the next class to run by earliest-deadline-first over
//! the queue fronts. Under overload, requests whose SLO has already
//! expired while queued can be *shed* — answering a few requests late
//! helps nobody once the deadline is blown, and shedding protects the
//! goodput of the rest.

use std::collections::VecDeque;

use crate::cost_table::CachedCost;
use crate::deadline::{shed_expired, sim_deadline};
use crate::request::Request;
use crate::scheduler::BatchScheduler;
use crate::stats::LatencyStats;

/// One model class hosted on the shared GPU.
pub struct ModelClass<'a> {
    /// Display name.
    pub name: &'static str,
    /// The class's profiled cost table.
    pub costs: &'a CachedCost,
    /// Batch scheduler used for this class's queue.
    pub scheduler: &'a dyn BatchScheduler,
    /// Latency objective for this class, seconds.
    pub slo: f64,
    /// This class's request trace (sorted by arrival).
    pub requests: Vec<Request>,
}

/// Shedding policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shedding {
    /// Serve everything, however late.
    Never,
    /// Drop queued requests whose SLO already expired before service.
    ExpiredSlo,
}

/// Per-class outcome.
#[derive(Debug)]
pub struct ClassReport {
    /// Class name.
    pub name: &'static str,
    /// Requests that arrived.
    pub arrivals: usize,
    /// Requests served (late or not).
    pub completed: usize,
    /// Requests served within their SLO — the goodput numerator.
    pub within_slo: usize,
    /// Requests shed.
    pub shed: usize,
    /// Latency over served requests.
    pub latency: LatencyStats,
}

impl ClassReport {
    /// Goodput fraction: served-within-SLO over arrivals.
    pub fn goodput(&self) -> f64 {
        if self.arrivals == 0 {
            return 1.0;
        }
        self.within_slo as f64 / self.arrivals as f64
    }
}

struct ClassState<'a> {
    class: &'a ModelClass<'a>,
    next_arrival: usize,
    queue: VecDeque<Request>,
    report: ClassReport,
}

/// Simulate the shared GPU until all traces are drained or `duration · 4`
/// elapses.
pub fn simulate_multi_model(
    classes: &[ModelClass<'_>],
    shedding: Shedding,
    duration: f64,
) -> Vec<ClassReport> {
    let cutoff = duration * 4.0;
    let mut states: Vec<ClassState<'_>> = classes
        .iter()
        .map(|c| ClassState {
            class: c,
            next_arrival: 0,
            queue: VecDeque::new(),
            report: ClassReport {
                name: c.name,
                arrivals: c.requests.len(),
                completed: 0,
                within_slo: 0,
                shed: 0,
                latency: LatencyStats::new(),
            },
        })
        .collect();

    let mut clock = 0.0f64;
    loop {
        // Pull arrivals into every queue.
        for st in states.iter_mut() {
            while st.next_arrival < st.class.requests.len()
                && st.class.requests[st.next_arrival].arrival <= clock
            {
                st.queue.push_back(st.class.requests[st.next_arrival]);
                st.next_arrival += 1;
            }
            // Shed queued requests whose deadline already passed.
            if shedding == Shedding::ExpiredSlo {
                st.report.shed += shed_expired(&mut st.queue, clock, st.class.slo);
            }
        }

        // Nothing queued: jump to the next arrival anywhere.
        if states.iter().all(|s| s.queue.is_empty()) {
            let next = states
                .iter()
                .filter_map(|s| s.class.requests.get(s.next_arrival).map(|r| r.arrival))
                .min_by(|a, b| a.partial_cmp(b).expect("finite"));
            match next {
                Some(t) => {
                    clock = t;
                    continue;
                }
                None => break,
            }
        }
        if clock > cutoff {
            break;
        }

        // Earliest-deadline-first across the queue fronts.
        let ci = states
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.queue.is_empty())
            .min_by(|(_, a), (_, b)| {
                let da = sim_deadline(a.queue.front().expect("non-empty").arrival, a.class.slo);
                let db = sim_deadline(b.queue.front().expect("non-empty").arrival, b.class.slo);
                da.partial_cmp(&db).expect("finite deadlines")
            })
            .map(|(i, _)| i)
            .expect("some queue is non-empty");

        let st = &mut states[ci];
        let snapshot: Vec<Request> = st.queue.drain(..).collect();
        let batching = st.class.scheduler.schedule(&snapshot, st.class.costs);
        for batch in &batching {
            let max_len = batch.iter().map(|&i| snapshot[i].len).max().expect("non-empty");
            clock += st.class.costs.batch_cost(max_len, batch.len());
            for &i in batch {
                let lat = clock - snapshot[i].arrival;
                st.report.latency.record(lat);
                st.report.completed += 1;
                if lat <= st.class.slo {
                    st.report.within_slo += 1;
                }
            }
        }
    }

    states.into_iter().map(|s| s.report).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{LengthDist, WorkloadSpec};
    use crate::scheduler::DpScheduler;

    fn table(scale: f64) -> CachedCost {
        CachedCost::from_fn(512, 20, 8, move |len, b| scale * (1.0e-3 + 8.0e-6 * (len * b) as f64))
    }

    fn trace(rate: f64, seed: u64) -> Vec<Request> {
        WorkloadSpec {
            rate_per_sec: rate,
            duration: 10.0,
            lengths: LengthDist::Uniform { lo: 5, hi: 300 },
            seed,
        }
        .generate()
    }

    #[test]
    fn two_classes_share_the_gpu() {
        let fast = table(1.0);
        let slow = table(3.0);
        let classes = [
            ModelClass {
                name: "bert",
                costs: &fast,
                scheduler: &DpScheduler,
                slo: 0.2,
                requests: trace(60.0, 1),
            },
            ModelClass {
                name: "big-bert",
                costs: &slow,
                scheduler: &DpScheduler,
                slo: 0.5,
                requests: trace(20.0, 2),
            },
        ];
        let reports = simulate_multi_model(&classes, Shedding::Never, 10.0);
        for r in &reports {
            assert_eq!(r.completed, r.arrivals, "{} must drain", r.name);
            assert_eq!(r.shed, 0);
            assert!(r.goodput() > 0.9, "{} goodput {}", r.name, r.goodput());
        }
    }

    #[test]
    fn shedding_protects_goodput_under_overload() {
        let costs = table(1.0);
        let mk = |shed| {
            let classes = [ModelClass {
                name: "bert",
                costs: &costs,
                scheduler: &DpScheduler,
                slo: 0.25,
                requests: trace(900.0, 3), // far past capacity
            }];
            simulate_multi_model(&classes, shed, 10.0).remove(0)
        };
        let never = mk(Shedding::Never);
        let shed = mk(Shedding::ExpiredSlo);
        assert!(shed.shed > 0, "overload must trigger shedding");
        assert!(
            shed.within_slo > never.within_slo,
            "shedding must raise goodput: {} vs {}",
            shed.within_slo,
            never.within_slo
        );
    }

    #[test]
    fn edf_prioritizes_tight_slos() {
        // Same workload, one class with a tight SLO and one lax: the tight
        // class must see lower latency.
        let costs = table(1.0);
        let classes = [
            ModelClass {
                name: "tight",
                costs: &costs,
                scheduler: &DpScheduler,
                slo: 0.05,
                requests: trace(100.0, 4),
            },
            ModelClass {
                name: "lax",
                costs: &costs,
                scheduler: &DpScheduler,
                slo: 5.0,
                requests: trace(100.0, 5),
            },
        ];
        let reports = simulate_multi_model(&classes, Shedding::Never, 10.0);
        let tight = reports.iter().find(|r| r.name == "tight").expect("present");
        let lax = reports.iter().find(|r| r.name == "lax").expect("present");
        assert!(
            tight.latency.mean() <= lax.latency.mean() * 1.1,
            "EDF must not starve the tight class: {} vs {}",
            tight.latency.mean(),
            lax.latency.mean()
        );
    }

    #[test]
    fn empty_input_is_clean() {
        let reports = simulate_multi_model(&[], Shedding::Never, 1.0);
        assert!(reports.is_empty());
    }
}
