//! The `cached_cost[seq_len][batch_size]` table of paper Algorithm 3.
//!
//! "The values of cached_cost are collected by a warm-up phase after the
//! service first starts on specific hardware, which utilizes the runtime to
//! run inferences under all possible batch sizes and sequence lengths.
//! They are stored on disk or database and reloaded when the serving module
//! is restarted." Here the warm-up queries the runtime's cost model over a
//! bucketed length grid (exact per-length profiling would add nothing but
//! warm-up time), and the table serializes with `serde` for the
//! disk-storage path.

use serde::{Deserialize, Serialize};
use tt_model::bert::BertConfig;
use tt_runtime::TurboRuntime;

/// Profiled batch-inference costs, indexed by (bucketed) max sequence
/// length and batch size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CachedCost {
    bucket: usize,
    max_len: usize,
    max_batch: usize,
    /// `costs[bucket_index][batch - 1]` = seconds for one batch.
    costs: Vec<Vec<f64>>,
    /// Optional activation-memory table: `memory[bucket][batch - 1]` =
    /// planned footprint bytes of one batch (from the sequence-length-aware
    /// allocator). Feeds memory-aware scheduling — the paper notes the
    /// footprint "affects … the maximum batch size of requests".
    #[serde(default)]
    memory: Option<Vec<Vec<usize>>>,
}

impl CachedCost {
    /// Warm-up: profile a BERT service on the runtime's cost model over
    /// `len ∈ {bucket, 2·bucket, …, max_len}` × `batch ∈ 1..=max_batch`.
    /// Batched execution always pads, so costs are taken on the masked
    /// graph.
    pub fn warm_up(
        runtime: &TurboRuntime,
        cfg: &BertConfig,
        max_len: usize,
        max_batch: usize,
        bucket: usize,
    ) -> Self {
        assert!(bucket >= 1 && max_len >= bucket && max_batch >= 1);
        let buckets = max_len.div_ceil(bucket);
        let mut costs = Vec::with_capacity(buckets);
        for bi in 0..buckets {
            let len = ((bi + 1) * bucket).min(max_len);
            let mut row = Vec::with_capacity(max_batch);
            for batch in 1..=max_batch {
                row.push(runtime.bert_cost(cfg, batch, len, batch > 1));
            }
            costs.push(row);
        }
        CachedCost { bucket, max_len, max_batch, costs, memory: None }
    }

    /// Build directly from a cost closure — used by tests and ablations to
    /// study the scheduler under synthetic cost surfaces.
    pub fn from_fn(
        max_len: usize,
        max_batch: usize,
        bucket: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let buckets = max_len.div_ceil(bucket);
        let costs = (0..buckets)
            .map(|bi| {
                let len = ((bi + 1) * bucket).min(max_len);
                (1..=max_batch).map(|b| f(len, b)).collect()
            })
            .collect();
        CachedCost { bucket, max_len, max_batch, costs, memory: None }
    }

    /// Profile the activation-memory footprint of every (length, batch)
    /// cell with the sequence-length-aware allocator and attach it to the
    /// table, enabling memory-aware scheduling. Each cell plans a fresh
    /// padded BERT graph and records the resulting chunked footprint.
    pub fn with_memory_profile(mut self, cfg: &BertConfig) -> Self {
        use tt_alloc::{TurboAllocator, TurboConfig};
        use tt_graph::lifetime::activation_lifetimes;
        let buckets = self.max_len.div_ceil(self.bucket);
        let mut memory = Vec::with_capacity(buckets);
        for bi in 0..buckets {
            let len = ((bi + 1) * self.bucket).min(self.max_len);
            let mut row = Vec::with_capacity(self.max_batch);
            for batch in 1..=self.max_batch {
                let bound = tt_model::bert::graph_skeleton(cfg, batch, len, batch > 1);
                let (usages, _) = activation_lifetimes(&bound.graph);
                // A fresh allocator per cell: the worst-case (cold) plan.
                let mut alloc = TurboAllocator::new(TurboConfig::default());
                let plan = alloc.plan(&usages);
                row.push(plan.footprint());
            }
            memory.push(row);
        }
        self.memory = Some(memory);
        self
    }

    /// Planned activation footprint of a batch, bytes. Panics if the table
    /// was built without [`CachedCost::with_memory_profile`].
    pub fn batch_memory(&self, max_len_in_batch: usize, count: usize) -> usize {
        let memory = self.memory.as_ref().expect("memory profile not attached");
        assert!(count >= 1 && count <= self.max_batch);
        let bi = max_len_in_batch.max(1).div_ceil(self.bucket) - 1;
        memory[bi][count - 1]
    }

    /// Whether the table carries a memory profile.
    pub fn has_memory_profile(&self) -> bool {
        self.memory.is_some()
    }

    /// Largest batch the table covers.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Largest length the table covers.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Cost of executing one batch of `count` requests padded to
    /// `max_len_in_batch`. Lengths round *up* to the profiling bucket.
    pub fn batch_cost(&self, max_len_in_batch: usize, count: usize) -> f64 {
        assert!(count >= 1 && count <= self.max_batch, "batch {count} out of profiled range");
        assert!(
            max_len_in_batch <= self.max_len,
            "length {max_len_in_batch} beyond profiled {}",
            self.max_len
        );
        let bi = max_len_in_batch.max(1).div_ceil(self.bucket) - 1;
        self.costs[bi][count - 1]
    }

    /// Per-request cost view (`batch_cost / count`) — the normalization of
    /// the paper's Bellman equation, which stores per-request cost and
    /// multiplies by the batch size.
    pub fn per_request_cost(&self, max_len_in_batch: usize, count: usize) -> f64 {
        self.batch_cost(max_len_in_batch, count) / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_gpusim::device::DeviceKind;
    use tt_runtime::RuntimeConfig;

    #[test]
    fn warm_up_produces_monotone_costs() {
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
        let cfg = BertConfig::base();
        let table = CachedCost::warm_up(&rt, &cfg, 128, 4, 32);
        // Longer sequences cost more at fixed batch.
        assert!(table.batch_cost(32, 1) < table.batch_cost(128, 1));
        // Bigger batches cost more in total at fixed length…
        assert!(table.batch_cost(64, 1) < table.batch_cost(64, 4));
        // …but less per request (the batching gain of paper Fig. 8).
        assert!(table.per_request_cost(64, 4) < table.per_request_cost(64, 1));
    }

    #[test]
    fn lengths_round_up_to_buckets() {
        let table = CachedCost::from_fn(100, 2, 10, |len, b| (len * b) as f64);
        assert_eq!(table.batch_cost(1, 1), 10.0);
        assert_eq!(table.batch_cost(10, 1), 10.0);
        assert_eq!(table.batch_cost(11, 1), 20.0);
        assert_eq!(table.batch_cost(100, 2), 200.0);
    }

    #[test]
    #[should_panic(expected = "out of profiled range")]
    fn overlarge_batch_is_rejected() {
        let table = CachedCost::from_fn(10, 2, 10, |_, _| 1.0);
        table.batch_cost(10, 3);
    }

    #[test]
    fn serde_round_trip() {
        let table = CachedCost::from_fn(50, 3, 10, |len, b| len as f64 + b as f64);
        let json = serde_json::to_string(&table).unwrap();
        let back: CachedCost = serde_json::from_str(&json).unwrap();
        assert_eq!(back.batch_cost(37, 2), table.batch_cost(37, 2));
    }
}
