//! The `cached_cost[seq_len][batch_size]` table of paper Algorithm 3.
//!
//! "The values of cached_cost are collected by a warm-up phase after the
//! service first starts on specific hardware, which utilizes the runtime to
//! run inferences under all possible batch sizes and sequence lengths.
//! They are stored on disk or database and reloaded when the serving module
//! is restarted." Here the warm-up queries the runtime's cost model over a
//! bucketed length grid (exact per-length profiling would add nothing but
//! warm-up time), and the table serializes with `serde` for the
//! disk-storage path.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::json::Value;
use serde::{Deserialize, Serialize};
use tt_model::bert::BertConfig;
use tt_runtime::TurboRuntime;

/// Online EWMA refinement of the static cost table. One atomic cell per
/// `(bucket, batch)` pair holds the f64 bit pattern of the smoothed
/// observed batch cost (all-zero bits = no observation yet — a real batch
/// never takes exactly 0.0 seconds). The serving loop feeds completed
/// batch timings in; Algorithm 3 then prices splits with what this
/// machine actually does instead of what the warm-up phase once measured.
#[derive(Debug)]
pub struct OnlineCosts {
    /// Smoothing factor in `(0, 1]`: weight of the newest observation.
    alpha: f64,
    /// `cells[bucket_index][batch - 1]` = EWMA seconds, as f64 bits.
    cells: Vec<Vec<AtomicU64>>,
}

impl OnlineCosts {
    fn new(alpha: f64, buckets: usize, max_batch: usize) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        let cells =
            (0..buckets).map(|_| (0..max_batch).map(|_| AtomicU64::new(0)).collect()).collect();
        OnlineCosts { alpha, cells }
    }

    /// Fold one observed batch cost into the cell's EWMA (CAS loop; the
    /// serving loop observes once per executed batch, so contention is nil).
    fn observe(&self, bucket: usize, batch_minus_1: usize, seconds: f64) {
        if !(seconds.is_finite() && seconds > 0.0) {
            return;
        }
        let cell = &self.cells[bucket][batch_minus_1];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = if cur == 0 {
                seconds
            } else {
                self.alpha * seconds + (1.0 - self.alpha) * f64::from_bits(cur)
            };
            match cell.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The cell's EWMA seconds, `None` before the first observation.
    fn get(&self, bucket: usize, batch_minus_1: usize) -> Option<f64> {
        match self.cells[bucket][batch_minus_1].load(Ordering::Relaxed) {
            0 => None,
            bits => Some(f64::from_bits(bits)),
        }
    }
}

impl Clone for OnlineCosts {
    fn clone(&self) -> Self {
        OnlineCosts {
            alpha: self.alpha,
            cells: self
                .cells
                .iter()
                .map(|row| row.iter().map(|c| AtomicU64::new(c.load(Ordering::Relaxed))).collect())
                .collect(),
        }
    }
}

impl Serialize for OnlineCosts {
    fn serialize_json(&self, out: &mut String) {
        // Cells serialize as seconds (0.0 = empty); f64 Display is
        // shortest-round-trip, so the EWMA state survives disk storage.
        let rows: Vec<Vec<f64>> = self
            .cells
            .iter()
            .map(|row| row.iter().map(|c| f64::from_bits(c.load(Ordering::Relaxed))).collect())
            .collect();
        out.push_str("{\"alpha\":");
        self.alpha.serialize_json(out);
        out.push_str(",\"cells\":");
        rows.serialize_json(out);
        out.push('}');
    }
}

impl Deserialize for OnlineCosts {
    fn deserialize_json(value: &Value) -> Result<Self, serde::json::Error> {
        let alpha = f64::deserialize_json(
            value.get("alpha").ok_or_else(|| serde::json::Error::new("missing field alpha"))?,
        )?;
        let rows = Vec::<Vec<f64>>::deserialize_json(
            value.get("cells").ok_or_else(|| serde::json::Error::new("missing field cells"))?,
        )?;
        let cells = rows
            .into_iter()
            .map(|row| row.into_iter().map(|v| AtomicU64::new(v.to_bits())).collect())
            .collect();
        Ok(OnlineCosts { alpha, cells })
    }
}

/// Profiled batch-inference costs, indexed by (bucketed) max sequence
/// length and batch size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CachedCost {
    bucket: usize,
    max_len: usize,
    max_batch: usize,
    /// `costs[bucket_index][batch - 1]` = seconds for one batch.
    costs: Vec<Vec<f64>>,
    /// Optional activation-memory table: `memory[bucket][batch - 1]` =
    /// planned footprint bytes of one batch (from the sequence-length-aware
    /// allocator). Feeds memory-aware scheduling — the paper notes the
    /// footprint "affects … the maximum batch size of requests".
    #[serde(default)]
    memory: Option<Vec<Vec<usize>>>,
    /// Optional energy table: `energy[bucket][batch - 1]` = modeled joules
    /// of one batch under the runtime's power model. Feeds the
    /// energy-under-SLO scheduling objective (`TT_SCHED_OBJECTIVE=energy`).
    #[serde(default)]
    energy: Option<Vec<Vec<f64>>>,
    /// Optional live refinement; see [`CachedCost::with_online_updates`].
    #[serde(default)]
    online: Option<OnlineCosts>,
}

impl CachedCost {
    /// Warm-up: profile a BERT service on the runtime's cost model over
    /// `len ∈ {bucket, 2·bucket, …, max_len}` × `batch ∈ 1..=max_batch`.
    /// Batched execution always pads, so costs are taken on the masked
    /// graph.
    pub fn warm_up(
        runtime: &TurboRuntime,
        cfg: &BertConfig,
        max_len: usize,
        max_batch: usize,
        bucket: usize,
    ) -> Self {
        assert!(bucket >= 1 && max_len >= bucket && max_batch >= 1);
        let buckets = max_len.div_ceil(bucket);
        let mut costs = Vec::with_capacity(buckets);
        for bi in 0..buckets {
            let len = ((bi + 1) * bucket).min(max_len);
            let mut row = Vec::with_capacity(max_batch);
            for batch in 1..=max_batch {
                row.push(runtime.bert_cost(cfg, batch, len, batch > 1));
            }
            costs.push(row);
        }
        CachedCost { bucket, max_len, max_batch, costs, memory: None, energy: None, online: None }
    }

    /// Build directly from a cost closure — used by tests and ablations to
    /// study the scheduler under synthetic cost surfaces.
    pub fn from_fn(
        max_len: usize,
        max_batch: usize,
        bucket: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let buckets = max_len.div_ceil(bucket);
        let costs = (0..buckets)
            .map(|bi| {
                let len = ((bi + 1) * bucket).min(max_len);
                (1..=max_batch).map(|b| f(len, b)).collect()
            })
            .collect();
        CachedCost { bucket, max_len, max_batch, costs, memory: None, energy: None, online: None }
    }

    /// Enable online cost refinement: completed batches observed through
    /// [`CachedCost::observe`] fold into per-cell EWMAs (weight `alpha` on
    /// the newest sample), and [`CachedCost::batch_cost`] answers from the
    /// EWMA once a cell has been observed. The static table remains the
    /// prior for never-observed cells, so Algorithm 3 always has a price.
    pub fn with_online_updates(mut self, alpha: f64) -> Self {
        let buckets = self.max_len.div_ceil(self.bucket);
        self.online = Some(OnlineCosts::new(alpha, buckets, self.max_batch));
        self
    }

    /// Whether the table refines itself from observed batches.
    pub fn online_enabled(&self) -> bool {
        self.online.is_some()
    }

    /// Feed one completed batch execution (`count` requests padded to
    /// `max_len_in_batch`, `seconds` of wall time) into the online EWMA.
    /// No-op unless [`CachedCost::with_online_updates`] was applied, and
    /// for out-of-range shapes (a misconfigured engine must not panic the
    /// feedback path).
    pub fn observe(&self, max_len_in_batch: usize, count: usize, seconds: f64) {
        let Some(online) = &self.online else { return };
        if count < 1 || count > self.max_batch || max_len_in_batch > self.max_len {
            return;
        }
        online.observe(self.bucket_index(max_len_in_batch), count - 1, seconds);
    }

    /// The live EWMA cost of a cell, if one has been observed.
    pub fn observed_cost(&self, max_len_in_batch: usize, count: usize) -> Option<f64> {
        assert!(count >= 1 && count <= self.max_batch);
        self.online.as_ref()?.get(self.bucket_index(max_len_in_batch), count - 1)
    }

    /// The warm-up (static) cost of a cell, ignoring online refinement.
    pub fn static_cost(&self, max_len_in_batch: usize, count: usize) -> f64 {
        assert!(count >= 1 && count <= self.max_batch, "batch {count} out of profiled range");
        assert!(
            max_len_in_batch <= self.max_len,
            "length {max_len_in_batch} beyond profiled {}",
            self.max_len
        );
        self.costs[self.bucket_index(max_len_in_batch)][count - 1]
    }

    fn bucket_index(&self, max_len_in_batch: usize) -> usize {
        max_len_in_batch.max(1).div_ceil(self.bucket) - 1
    }

    /// Profile the activation-memory footprint of every (length, batch)
    /// cell with the sequence-length-aware allocator and attach it to the
    /// table, enabling memory-aware scheduling. Each cell plans a fresh
    /// padded BERT graph and records the resulting chunked footprint.
    pub fn with_memory_profile(mut self, cfg: &BertConfig) -> Self {
        use tt_alloc::{TurboAllocator, TurboConfig};
        use tt_graph::lifetime::activation_lifetimes;
        let buckets = self.max_len.div_ceil(self.bucket);
        let mut memory = Vec::with_capacity(buckets);
        for bi in 0..buckets {
            let len = ((bi + 1) * self.bucket).min(self.max_len);
            let mut row = Vec::with_capacity(self.max_batch);
            for batch in 1..=self.max_batch {
                let bound = tt_model::bert::graph_skeleton(cfg, batch, len, batch > 1);
                let (usages, _) = activation_lifetimes(&bound.graph);
                // A fresh allocator per cell: the worst-case (cold) plan.
                let mut alloc = TurboAllocator::new(TurboConfig::default());
                let plan = alloc.plan(&usages);
                row.push(plan.footprint());
            }
            memory.push(row);
        }
        self.memory = Some(memory);
        self
    }

    /// Planned activation footprint of a batch, bytes. Panics if the table
    /// was built without [`CachedCost::with_memory_profile`].
    pub fn batch_memory(&self, max_len_in_batch: usize, count: usize) -> usize {
        let memory = self.memory.as_ref().expect("memory profile not attached");
        assert!(count >= 1 && count <= self.max_batch);
        let bi = max_len_in_batch.max(1).div_ceil(self.bucket) - 1;
        memory[bi][count - 1]
    }

    /// Whether the table carries a memory profile.
    pub fn has_memory_profile(&self) -> bool {
        self.memory.is_some()
    }

    /// Profile the modeled energy of every (length, batch) cell with the
    /// runtime's power model and attach it, enabling the energy scheduling
    /// objective. Shares the runtime's priced-shape cache with
    /// [`CachedCost::warm_up`], so warming cost and energy together prices
    /// each shape once.
    pub fn with_energy_profile(mut self, runtime: &TurboRuntime, cfg: &BertConfig) -> Self {
        let buckets = self.max_len.div_ceil(self.bucket);
        let mut energy = Vec::with_capacity(buckets);
        for bi in 0..buckets {
            let len = ((bi + 1) * self.bucket).min(self.max_len);
            let mut row = Vec::with_capacity(self.max_batch);
            for batch in 1..=self.max_batch {
                row.push(runtime.bert_energy(cfg, batch, len, batch > 1));
            }
            energy.push(row);
        }
        self.energy = Some(energy);
        self
    }

    /// Attach a synthetic energy surface — the energy analogue of
    /// [`CachedCost::from_fn`], for scheduler tests and ablations.
    pub fn with_energy_fn(mut self, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let buckets = self.max_len.div_ceil(self.bucket);
        let energy = (0..buckets)
            .map(|bi| {
                let len = ((bi + 1) * self.bucket).min(self.max_len);
                (1..=self.max_batch).map(|b| f(len, b)).collect()
            })
            .collect();
        self.energy = Some(energy);
        self
    }

    /// Modeled joules of executing one batch of `count` requests padded to
    /// `max_len_in_batch`. Panics if the table was built without
    /// [`CachedCost::with_energy_profile`] (or `with_energy_fn`).
    pub fn batch_energy(&self, max_len_in_batch: usize, count: usize) -> f64 {
        let energy = self.energy.as_ref().expect("energy profile not attached");
        assert!(count >= 1 && count <= self.max_batch, "batch {count} out of profiled range");
        assert!(
            max_len_in_batch <= self.max_len,
            "length {max_len_in_batch} beyond profiled {}",
            self.max_len
        );
        energy[self.bucket_index(max_len_in_batch)][count - 1]
    }

    /// Whether the table carries an energy profile.
    pub fn has_energy_profile(&self) -> bool {
        self.energy.is_some()
    }

    /// Largest batch the table covers.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Largest length the table covers.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Cost of executing one batch of `count` requests padded to
    /// `max_len_in_batch`. Lengths round *up* to the profiling bucket.
    /// With online updates enabled, cells that have been observed on the
    /// live machine answer from their EWMA; everything else falls back to
    /// the warm-up value.
    pub fn batch_cost(&self, max_len_in_batch: usize, count: usize) -> f64 {
        assert!(count >= 1 && count <= self.max_batch, "batch {count} out of profiled range");
        assert!(
            max_len_in_batch <= self.max_len,
            "length {max_len_in_batch} beyond profiled {}",
            self.max_len
        );
        let bi = self.bucket_index(max_len_in_batch);
        if let Some(online) = &self.online {
            if let Some(live) = online.get(bi, count - 1) {
                return live;
            }
        }
        self.costs[bi][count - 1]
    }

    /// Per-request cost view (`batch_cost / count`) — the normalization of
    /// the paper's Bellman equation, which stores per-request cost and
    /// multiplies by the batch size.
    pub fn per_request_cost(&self, max_len_in_batch: usize, count: usize) -> f64 {
        self.batch_cost(max_len_in_batch, count) / count as f64
    }

    /// Admission-time estimate: the cost of serving a request of `len`
    /// tokens alone. Unlike [`CachedCost::batch_cost`] this never panics —
    /// lengths beyond the profiled range clamp to the last bucket (the
    /// admission controller must produce *an* estimate for any request the
    /// parser accepts; an oversized one prices at least as high as the
    /// largest profiled shape).
    pub fn single_request_estimate(&self, len: usize) -> f64 {
        self.batch_cost(len.clamp(1, self.max_len), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_gpusim::device::DeviceKind;
    use tt_runtime::RuntimeConfig;

    #[test]
    fn warm_up_produces_monotone_costs() {
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
        let cfg = BertConfig::base();
        let table = CachedCost::warm_up(&rt, &cfg, 128, 4, 32);
        // Longer sequences cost more at fixed batch.
        assert!(table.batch_cost(32, 1) < table.batch_cost(128, 1));
        // Bigger batches cost more in total at fixed length…
        assert!(table.batch_cost(64, 1) < table.batch_cost(64, 4));
        // …but less per request (the batching gain of paper Fig. 8).
        assert!(table.per_request_cost(64, 4) < table.per_request_cost(64, 1));
    }

    #[test]
    fn energy_profile_tracks_work_and_round_trips() {
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
        let cfg = BertConfig::base();
        let table = CachedCost::warm_up(&rt, &cfg, 128, 4, 32).with_energy_profile(&rt, &cfg);
        assert!(table.has_energy_profile());
        assert!(table.batch_energy(32, 1) > 0.0);
        // Longer sequences and bigger batches burn more joules…
        assert!(table.batch_energy(32, 1) < table.batch_energy(128, 1));
        assert!(table.batch_energy(64, 1) < table.batch_energy(64, 4));
        // …but batching amortizes the per-inference static draw.
        assert!(table.batch_energy(64, 4) / 4.0 < table.batch_energy(64, 1));
        let json = serde_json::to_string(&table).unwrap();
        let back: CachedCost = serde_json::from_str(&json).unwrap();
        assert_eq!(back.batch_energy(64, 2), table.batch_energy(64, 2));
        // Tables without the profile keep rejecting energy queries.
        assert!(!CachedCost::from_fn(10, 2, 10, |_, _| 1.0).has_energy_profile());
    }

    #[test]
    fn lengths_round_up_to_buckets() {
        let table = CachedCost::from_fn(100, 2, 10, |len, b| (len * b) as f64);
        assert_eq!(table.batch_cost(1, 1), 10.0);
        assert_eq!(table.batch_cost(10, 1), 10.0);
        assert_eq!(table.batch_cost(11, 1), 20.0);
        assert_eq!(table.batch_cost(100, 2), 200.0);
    }

    #[test]
    #[should_panic(expected = "out of profiled range")]
    fn overlarge_batch_is_rejected() {
        let table = CachedCost::from_fn(10, 2, 10, |_, _| 1.0);
        table.batch_cost(10, 3);
    }

    #[test]
    fn online_observations_override_static_cells() {
        let table =
            CachedCost::from_fn(100, 4, 10, |len, b| (len * b) as f64).with_online_updates(0.5);
        assert!(table.online_enabled());
        // Unobserved cells answer from the static table.
        assert_eq!(table.batch_cost(10, 1), 10.0);
        assert_eq!(table.observed_cost(10, 1), None);
        // First observation seeds the EWMA outright.
        table.observe(10, 1, 4.0);
        assert_eq!(table.batch_cost(10, 1), 4.0);
        // Subsequent observations blend: 0.5·8 + 0.5·4 = 6.
        table.observe(10, 1, 8.0);
        assert!((table.batch_cost(10, 1) - 6.0).abs() < 1e-12);
        // Other cells are untouched, and the static view is preserved.
        assert_eq!(table.batch_cost(10, 2), 20.0);
        assert_eq!(table.static_cost(10, 1), 10.0);
    }

    #[test]
    fn online_observe_ignores_garbage_and_out_of_range() {
        let table =
            CachedCost::from_fn(20, 2, 10, |len, b| (len * b) as f64).with_online_updates(0.2);
        table.observe(10, 1, f64::NAN);
        table.observe(10, 1, -3.0);
        table.observe(10, 1, 0.0);
        table.observe(999, 1, 1.0); // length beyond the table
        table.observe(10, 99, 1.0); // batch beyond the table
        assert_eq!(table.batch_cost(10, 1), 10.0, "no garbage observation sticks");
        // A table without online updates accepts observe as a no-op.
        let plain = CachedCost::from_fn(20, 2, 10, |len, b| (len * b) as f64);
        plain.observe(10, 1, 123.0);
        assert_eq!(plain.batch_cost(10, 1), 10.0);
    }

    #[test]
    fn online_state_round_trips_through_serde() {
        let table =
            CachedCost::from_fn(50, 3, 10, |len, b| (len + b) as f64).with_online_updates(0.25);
        table.observe(37, 2, 0.125);
        let json = serde_json::to_string(&table).unwrap();
        let back: CachedCost = serde_json::from_str(&json).unwrap();
        assert!(back.online_enabled());
        assert_eq!(back.observed_cost(37, 2), Some(0.125));
        assert_eq!(back.batch_cost(37, 2), 0.125);
        assert_eq!(back.batch_cost(37, 1), table.batch_cost(37, 1));
    }

    #[test]
    fn serde_round_trip() {
        let table = CachedCost::from_fn(50, 3, 10, |len, b| len as f64 + b as f64);
        let json = serde_json::to_string(&table).unwrap();
        let back: CachedCost = serde_json::from_str(&json).unwrap();
        assert_eq!(back.batch_cost(37, 2), table.batch_cost(37, 2));
    }
}
