//! Retry policy for the fleet router: bounded attempts, seeded
//! decorrelated-jitter exponential backoff, a global retry *budget*
//! against retry storms, and hard deadline awareness.
//!
//! Retries are the cheapest reliability layer a replicated fleet gets —
//! and the easiest way to melt one down. Three guards keep them safe:
//!
//! - **Bounded attempts** ([`RetryConfig::max_attempts`]): a request makes
//!   at most N attempts total, then surfaces its last typed error.
//! - **A global budget** ([`RetryBudget`]): a token bucket that earns a
//!   fraction of a token per *first* attempt and spends a whole token per
//!   retry. Steady state: retries are capped at `budget_ratio` of
//!   traffic. When half the fleet is down and every request wants a
//!   retry, the bucket drains and the excess fails fast instead of
//!   doubling the load on the survivors — the classic retry-storm
//!   amplification cap (the same scheme Finagle and gRPC ship).
//! - **Deadline awareness** ([`fits_deadline`]): a retry never fires when
//!   its backoff sleep plus an execution estimate no longer fits in the
//!   request's remaining `x-tt-deadline-ms` budget; the client gets the
//!   typed error while it can still act on it.
//!
//! Backoff is *decorrelated jitter* (`sleep = min(cap, uniform(base,
//! prev·3))`): exponential-ish growth with enough randomness that a
//! thundering herd of simultaneous failures does not re-synchronize on
//! the next attempt. Draws come from a per-request SplitMix64 stream
//! seeded from `TT_RETRY_SEED`, so a drill replays the exact same sleep
//! schedule — pinned by the `prop_retry` property tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::deadline::Deadline;

/// Tuning for the fleet's retry layer. All knobs have `TT_RETRY_*`
/// environment overrides (see [`RetryConfig::from_env`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Total attempts per request, the first included. 1 disables retries.
    pub max_attempts: u32,
    /// Backoff floor: every sleep is at least this long.
    pub base: Duration,
    /// Backoff ceiling: every sleep is at most this long.
    pub cap: Duration,
    /// Retry-budget earn rate: tokens deposited per first attempt. 0.1
    /// means sustained retries are capped at 10% of request volume.
    pub budget_ratio: f64,
    /// Retry-budget bucket capacity (burst allowance). The bucket starts
    /// full, so a cold fleet can absorb an immediate failure burst.
    pub budget_cap: f64,
    /// Seed for the per-request backoff jitter streams.
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 3,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(100),
            budget_ratio: 0.1,
            budget_cap: 32.0,
            seed: 0,
        }
    }
}

impl RetryConfig {
    /// Defaults overridden by `TT_RETRY_MAX` / `TT_RETRY_BASE_MS` /
    /// `TT_RETRY_CAP_MS` / `TT_RETRY_BUDGET` / `TT_RETRY_BUDGET_CAP` /
    /// `TT_RETRY_SEED` (unparseable values fall back, matching the
    /// `TT_HTTP_*` convention).
    pub fn from_env() -> Self {
        fn env<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        }
        let d = RetryConfig::default();
        RetryConfig {
            max_attempts: env("TT_RETRY_MAX", d.max_attempts).max(1),
            base: Duration::from_millis(env("TT_RETRY_BASE_MS", d.base.as_millis() as u64)),
            cap: Duration::from_millis(env("TT_RETRY_CAP_MS", d.cap.as_millis() as u64)),
            budget_ratio: env("TT_RETRY_BUDGET", d.budget_ratio),
            budget_cap: env("TT_RETRY_BUDGET_CAP", d.budget_cap),
            seed: env("TT_RETRY_SEED", d.seed),
        }
    }
}

/// SplitMix64 — the same tiny dependency-free generator `tt-chaos` uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One request's backoff stream: decorrelated jitter, deterministic under
/// its seed. [`next_sleep`](Self::next_sleep) yields the sleep before
/// attempt k+1.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ns: u64,
    cap_ns: u64,
    prev_ns: u64,
    rng: u64,
}

impl Backoff {
    /// A backoff stream for one request. `stream` decorrelates concurrent
    /// requests (the router passes a per-request counter); the same
    /// `(config.seed, stream)` pair always replays the same sleeps.
    pub fn new(config: &RetryConfig, stream: u64) -> Self {
        let base_ns = config.base.as_nanos() as u64;
        // A misconfigured cap below base degenerates to constant-base.
        let cap_ns = (config.cap.as_nanos() as u64).max(base_ns);
        let mut rng = config.seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        // One warm-up step so stream 0 with seed 0 isn't a zero state.
        splitmix64(&mut rng);
        Backoff { base_ns, cap_ns, prev_ns: base_ns, rng }
    }

    /// The next sleep: `min(cap, uniform(base, prev·3))`, always within
    /// `[base, cap]`.
    pub fn next_sleep(&mut self) -> Duration {
        let hi = self.prev_ns.saturating_mul(3).clamp(self.base_ns, self.cap_ns);
        let span = hi - self.base_ns;
        let sleep_ns = if span == 0 {
            self.base_ns
        } else {
            self.base_ns + splitmix64(&mut self.rng) % (span + 1)
        };
        self.prev_ns = sleep_ns;
        Duration::from_nanos(sleep_ns)
    }
}

/// Millitokens per retry token — the bucket's fixed-point unit, so the
/// fractional earn rate needs no float atomics.
const MILLI: u64 = 1000;

/// The fleet-global retry budget: a token bucket shared by every request.
/// First attempts *deposit* `budget_ratio` tokens (up to `budget_cap`);
/// each retry *withdraws* one whole token or is refused. All operations
/// are lock-free CAS loops.
#[derive(Debug)]
pub struct RetryBudget {
    millitokens: AtomicU64,
    cap_millitokens: u64,
    deposit_millitokens: u64,
}

impl RetryBudget {
    /// A bucket earning `ratio` tokens per first attempt, holding at most
    /// `cap` tokens, starting full.
    pub fn new(ratio: f64, cap: f64) -> Self {
        let cap_millitokens = (cap.max(0.0) * MILLI as f64) as u64;
        RetryBudget {
            millitokens: AtomicU64::new(cap_millitokens),
            cap_millitokens,
            deposit_millitokens: (ratio.max(0.0) * MILLI as f64) as u64,
        }
    }

    /// Earn: called once per *first* attempt.
    pub fn deposit(&self) {
        let mut cur = self.millitokens.load(Ordering::Relaxed);
        loop {
            let next = (cur + self.deposit_millitokens).min(self.cap_millitokens);
            match self.millitokens.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Spend: called before each retry. `false` means the budget is
    /// exhausted and the retry must not fire.
    pub fn try_withdraw(&self) -> bool {
        let mut cur = self.millitokens.load(Ordering::Relaxed);
        loop {
            if cur < MILLI {
                return false;
            }
            match self.millitokens.compare_exchange_weak(
                cur,
                cur - MILLI,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Whole tokens currently available (observability/tests).
    pub fn available(&self) -> f64 {
        self.millitokens.load(Ordering::Relaxed) as f64 / MILLI as f64
    }
}

/// Whether a retry still fits: its backoff sleep plus an estimate of the
/// attempt itself must fit in the deadline's remaining budget. A request
/// without a deadline always fits; an expired deadline never does.
pub fn fits_deadline(deadline: Option<Deadline>, sleep: Duration, estimate: Duration) -> bool {
    match deadline {
        None => true,
        Some(d) => match d.remaining() {
            Some(remaining) => remaining > sleep + estimate,
            None => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_stays_within_bounds_and_is_deterministic() {
        let config = RetryConfig::default();
        let seq = |stream: u64| {
            let mut b = Backoff::new(&config, stream);
            (0..64).map(|_| b.next_sleep()).collect::<Vec<_>>()
        };
        let a = seq(42);
        assert_eq!(a, seq(42), "same (seed, stream) replays the same sleeps");
        assert_ne!(a, seq(43), "streams decorrelate");
        assert!(
            a.iter().all(|&s| s >= config.base && s <= config.cap),
            "every sleep within [base, cap]"
        );
        assert!(a.windows(2).any(|w| w[1] > w[0]), "backoff must actually back off");
    }

    #[test]
    fn degenerate_cap_below_base_yields_constant_base() {
        let config = RetryConfig {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(1),
            ..Default::default()
        };
        let mut b = Backoff::new(&config, 0);
        for _ in 0..8 {
            assert_eq!(b.next_sleep(), Duration::from_millis(10));
        }
    }

    #[test]
    fn budget_earns_fractionally_and_spends_whole_tokens() {
        let budget = RetryBudget::new(0.1, 2.0);
        // Starts full: 2 tokens.
        assert!(budget.try_withdraw());
        assert!(budget.try_withdraw());
        assert!(!budget.try_withdraw(), "bucket empty");
        // Ten first-attempts earn one retry token.
        for _ in 0..9 {
            budget.deposit();
            assert!(!budget.try_withdraw(), "fraction not yet a whole token");
        }
        budget.deposit();
        assert!(budget.try_withdraw());
        // Deposits clamp at the cap.
        for _ in 0..1000 {
            budget.deposit();
        }
        assert!((budget.available() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn deadline_gate_blocks_unaffordable_retries() {
        let ms = Duration::from_millis;
        assert!(fits_deadline(None, ms(1000), ms(1000)), "no deadline, no gate");
        let d = Deadline::within(ms(100));
        assert!(fits_deadline(Some(d), ms(10), ms(10)));
        assert!(!fits_deadline(Some(d), ms(80), ms(30)), "sleep + estimate exceeds remaining");
        let expired = Deadline::at(std::time::Instant::now());
        assert!(!fits_deadline(Some(expired), Duration::ZERO, Duration::ZERO));
    }
}
