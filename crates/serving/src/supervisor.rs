//! Supervised engine replicas: a watchdog per replica that detects a dead
//! or stalled engine thread, tears the replica down (leak-checked),
//! restarts it under a fresh generation stamp, and fails any in-flight
//! work with typed errors — never a silent drop, never a hung client.
//!
//! A [`LiveEngine`](crate::live::LiveEngine) owns its engine thread for
//! life: a panic that escapes the per-batch `catch_unwind`, or a loop that
//! simply stops making progress, is a permanent outage. A
//! [`SupervisedReplica`] instead holds the thread at arm's length through
//! a [`ReplicaFactory`] and watches two signals:
//!
//! - **death** — the engine thread's `JoinHandle::is_finished()` turns
//!   true while the replica still holds its client (a panic, or an exit
//!   nothing asked for);
//! - **stall** — the loop's [`Heartbeat`] (ticked every iteration, idle
//!   iterations included) goes stale past the configured liveness
//!   deadline: the thread is alive but stuck.
//!
//! Either way the watchdog *bounces* the replica: it bumps the generation
//! stamp first (so every request polling a reply from the old generation
//! returns a typed [`LiveError::Unavailable`] instead of hanging), drops
//! the old clients, joins what can be joined — asserting the generative
//! engine leaked zero KV pages — waits the restart backoff, and asks the
//! factory for a fresh replica under the new stamp. The
//! [`Fleet`](crate::router::Fleet) routes around the replica for exactly
//! the window in which it is down.
//!
//! See `docs/ROBUSTNESS.md` § Fleet for the full state machine and the
//! `serving_fleet` bench for the measured kill-one-of-three drill.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::RecvTimeoutError;

use tt_telemetry::{Counter, Gauge, Registry, SpanContext};

use crate::deadline::Deadline;
use crate::generate::{GenClient, GenParts};
use crate::live::{Heartbeat, LiveClient, LiveCore, LiveError, LiveResponse};

/// How often a request blocked on a replica's reply re-checks whether the
/// replica bounced out from under it.
const REPLY_POLL: Duration = Duration::from_millis(25);

/// Watchdog tuning. Defaults suit the tiny test models; a deployment
/// serving `TT_HTTP_MODEL=base` should keep the liveness deadline well
/// above its worst-case single-batch execution time (the loop ticks its
/// heartbeat *between* batches, not inside one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Heartbeat age past which the watchdog declares the replica stalled.
    pub liveness_deadline: Duration,
    /// Watchdog poll cadence (detection latency is at most one poll).
    pub poll_interval: Duration,
    /// Pause between teardown and respawn — a crash-looping replica
    /// restarts at this rate, not in a hot spin.
    pub restart_backoff: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            liveness_deadline: Duration::from_millis(1500),
            poll_interval: Duration::from_millis(20),
            restart_backoff: Duration::from_millis(50),
        }
    }
}

impl SupervisorConfig {
    /// Defaults overridden by `TT_FLEET_LIVENESS_MS` /
    /// `TT_FLEET_POLL_MS` / `TT_FLEET_RESTART_BACKOFF_MS` (unparseable
    /// values fall back, matching the `TT_HTTP_*` convention).
    pub fn from_env() -> Self {
        fn ms(name: &str, default: Duration) -> Duration {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .map(Duration::from_millis)
                .unwrap_or(default)
        }
        let d = SupervisorConfig::default();
        SupervisorConfig {
            liveness_deadline: ms("TT_FLEET_LIVENESS_MS", d.liveness_deadline),
            poll_interval: ms("TT_FLEET_POLL_MS", d.poll_interval),
            restart_backoff: ms("TT_FLEET_RESTART_BACKOFF_MS", d.restart_backoff),
        }
    }
}

/// Everything one replica runs: the supervised live engine core and,
/// optionally, a generative engine riding the same lifecycle.
pub struct ReplicaParts {
    /// The replica's batch-inference engine (see
    /// [`spawn_core`](crate::live::spawn_core)).
    pub live: LiveCore,
    /// The replica's continuous-batching generation engine, if it serves
    /// `/v1/generate` too (see
    /// [`GenEngine::into_parts`](crate::generate::GenEngine::into_parts)).
    pub generative: Option<GenParts>,
}

/// Builds one replica: called at startup and again after every bounce,
/// with the replica's fleet index and its fresh generation stamp.
pub type ReplicaFactory = Arc<dyn Fn(usize, u64) -> ReplicaParts + Send + Sync>;

/// Why a replica was restarted (the `cause` label on
/// `replica_restarts_total`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartCause {
    /// The engine thread panicked.
    Panic,
    /// The engine thread exited cleanly while the replica still held its
    /// client — an exit nothing asked for.
    Exit,
    /// The heartbeat went stale past the liveness deadline.
    Stall,
}

impl RestartCause {
    /// Stable snake_case name for the metric label.
    pub fn name(self) -> &'static str {
        match self {
            RestartCause::Panic => "panic",
            RestartCause::Exit => "exit",
            RestartCause::Stall => "stall",
        }
    }
}

/// What the watchdog noticed before it knows whether the thread panicked
/// or exited (that distinction needs the join).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Detected {
    Dead,
    Stalled,
}

/// The live slot: the current generation's engine handles. `None` only
/// inside a bounce window.
struct Slot {
    live_client: LiveClient,
    heartbeat: Heartbeat,
    live_handle: JoinHandle<usize>,
    generative: Option<GenParts>,
}

impl Slot {
    fn from_parts(parts: ReplicaParts) -> Self {
        Slot {
            live_client: parts.live.client,
            heartbeat: parts.live.heartbeat,
            live_handle: parts.live.handle,
            generative: parts.generative,
        }
    }
}

/// Per-replica telemetry: a heartbeat-age/generation gauge pair plus the
/// restart counter, all labeled with the replica's fleet index.
struct ReplicaMetrics {
    heartbeat_age: Arc<Gauge>,
    generation: Arc<Gauge>,
    restarts_panic: Arc<Counter>,
    restarts_exit: Arc<Counter>,
    restarts_stall: Arc<Counter>,
}

impl ReplicaMetrics {
    fn register(registry: &Registry, replica: usize) -> Self {
        let label = replica.to_string();
        let restarts = |cause: &str| {
            registry.counter(
                "replica_restarts_total",
                "Replica bounces by the supervisor watchdog, by replica index and cause",
                &[("replica", label.as_str()), ("cause", cause)],
            )
        };
        ReplicaMetrics {
            heartbeat_age: registry.gauge(
                "replica_heartbeat_age_seconds",
                "Seconds since the replica's engine loop last ticked its heartbeat",
                &[("replica", label.as_str())],
            ),
            generation: registry.gauge(
                "replica_generation",
                "The replica's current generation stamp (bumped on every restart)",
                &[("replica", label.as_str())],
            ),
            restarts_panic: restarts("panic"),
            restarts_exit: restarts("exit"),
            restarts_stall: restarts("stall"),
        }
    }

    fn restart(&self, cause: RestartCause) {
        match cause {
            RestartCause::Panic => self.restarts_panic.inc(),
            RestartCause::Exit => self.restarts_exit.inc(),
            RestartCause::Stall => self.restarts_stall.inc(),
        }
    }
}

/// State shared between the replica handle, its watchdog thread, and
/// every request currently polling a reply.
struct ReplicaShared {
    id: usize,
    factory: ReplicaFactory,
    config: SupervisorConfig,
    slot: Mutex<Option<Slot>>,
    /// The authority on "which incarnation is current": bumped *before*
    /// teardown so pollers bail with a typed error instead of hanging.
    generation: AtomicU64,
    /// True from teardown until the respawned replica is in the slot.
    restarting: AtomicBool,
    restarts: AtomicU64,
    shutdown: AtomicBool,
    /// Requests served by incarnations that were joined (a stalled,
    /// abandoned thread takes its count with it).
    served: AtomicU64,
    metrics: Option<ReplicaMetrics>,
}

impl ReplicaShared {
    fn lock_slot(&self) -> MutexGuard<'_, Option<Slot>> {
        self.slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// End-of-life accounting returned by [`SupervisedReplica::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaReport {
    /// Requests served across all joined incarnations.
    pub served: u64,
    /// Times the watchdog bounced the replica.
    pub restarts: u64,
    /// Final generation stamp.
    pub generation: u64,
}

/// One supervised engine replica: the engine thread(s) behind a factory,
/// a watchdog that bounces them on death or stall, and a submission path
/// that can never hang on a bounced incarnation.
pub struct SupervisedReplica {
    shared: Arc<ReplicaShared>,
    watchdog: Option<JoinHandle<()>>,
}

impl SupervisedReplica {
    /// Build and start replica `id`: calls the factory for generation 0
    /// and spawns the watchdog. Pass a `registry` to get the
    /// `replica_heartbeat_age_seconds` / `replica_generation` /
    /// `replica_restarts_total` families, labeled with this replica's
    /// index.
    pub fn start(
        id: usize,
        factory: ReplicaFactory,
        config: SupervisorConfig,
        registry: Option<&Registry>,
    ) -> Self {
        let parts = factory(id, 0);
        let metrics = registry.map(|r| ReplicaMetrics::register(r, id));
        let shared = Arc::new(ReplicaShared {
            id,
            factory,
            config,
            slot: Mutex::new(Some(Slot::from_parts(parts))),
            generation: AtomicU64::new(0),
            restarting: AtomicBool::new(false),
            restarts: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
            metrics,
        });
        let watchdog = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("tt-replica-watchdog-{id}"))
                .spawn(move || watchdog_loop(&shared))
                .expect("spawning the replica watchdog")
        };
        SupervisedReplica { shared, watchdog: Some(watchdog) }
    }

    /// This replica's fleet index.
    pub fn id(&self) -> usize {
        self.shared.id
    }

    /// Current generation stamp (bumped on every bounce).
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::SeqCst)
    }

    /// Whether the replica is inside a bounce window (torn down, not yet
    /// respawned). The router treats this as hard-down.
    pub fn restarting(&self) -> bool {
        self.shared.restarting.load(Ordering::SeqCst)
    }

    /// Times the watchdog has bounced this replica.
    pub fn restarts(&self) -> u64 {
        self.shared.restarts.load(Ordering::SeqCst)
    }

    /// Age of the current incarnation's heartbeat, or `None` mid-bounce.
    pub fn heartbeat_age(&self) -> Option<Duration> {
        self.shared.lock_slot().as_ref().map(|s| s.heartbeat.age())
    }

    /// The current incarnation's generation client, or `None` if the
    /// replica is mid-bounce or runs no generative engine.
    pub fn gen_client(&self) -> Option<GenClient> {
        self.shared
            .lock_slot()
            .as_ref()
            .and_then(|s| s.generative.as_ref().map(|g| g.client.clone()))
    }

    /// Submit a request to the current incarnation and wait for its reply
    /// — with the supervisor's no-hang guarantee: if the replica bounces
    /// while the job is in flight, the caller gets a typed
    /// [`LiveError::Unavailable`] within one reply-poll window, never a
    /// hang.
    pub fn infer_request(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<LiveResponse, LiveError> {
        let (submitted_generation, client) = {
            let slot = self.shared.lock_slot();
            match slot.as_ref() {
                Some(s) if !self.restarting() => (self.generation(), s.live_client.clone()),
                _ => return Err(LiveError::Unavailable),
            }
        };
        let reply = client.submit_job(tokens, trace, deadline)?;
        drop(client);
        loop {
            match reply.recv_timeout(REPLY_POLL) {
                Ok(result) => return result,
                Err(RecvTimeoutError::Disconnected) => return Err(LiveError::Unavailable),
                Err(RecvTimeoutError::Timeout) => {
                    if self.generation() != submitted_generation {
                        // The replica bounced under this job. One final
                        // look, in case the reply raced the teardown —
                        // then the typed error.
                        return reply.try_recv().unwrap_or(Err(LiveError::Unavailable));
                    }
                }
            }
        }
    }

    /// Stop the watchdog, drain and join the current incarnation, and
    /// leak-check the generative engine. Returns the lifetime accounting.
    pub fn shutdown(mut self) -> ReplicaReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        let slot = self.shared.lock_slot().take();
        if let Some(slot) = slot {
            drop(slot.live_client);
            if let Ok(served) = slot.live_handle.join() {
                self.shared.served.fetch_add(served as u64, Ordering::SeqCst);
            }
            join_generative(slot.generative, self.shared.id);
        }
        ReplicaReport {
            served: self.shared.served.load(Ordering::SeqCst),
            restarts: self.restarts(),
            generation: self.generation(),
        }
    }
}

impl Drop for SupervisedReplica {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        if let Some(slot) = self.shared.lock_slot().take() {
            drop(slot.live_client);
            let _ = slot.live_handle.join();
            join_generative(slot.generative, self.shared.id);
        }
    }
}

/// Join a replica's generative engine and leak-check it: the paged KV
/// arena must come back empty across a bounce, or pages are being lost
/// every restart and the fleet bleeds capacity until it can't admit
/// anything — exactly the failure this assert makes loud.
fn join_generative(generative: Option<GenParts>, replica: usize) {
    let Some(generative) = generative else { return };
    drop(generative.client);
    // A join Err means the generative thread itself panicked; there is no
    // summary to check — the fresh incarnation starts from an empty arena.
    if let Ok(summary) = generative.handle.join() {
        assert_eq!(summary.pages_leaked, 0, "replica {replica} leaked KV pages across a bounce");
    }
}

fn watchdog_loop(shared: &Arc<ReplicaShared>) {
    loop {
        std::thread::sleep(shared.config.poll_interval);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let detected = {
            let slot = shared.lock_slot();
            match slot.as_ref() {
                None => None,
                Some(s) => {
                    let age = s.heartbeat.age();
                    if let Some(m) = &shared.metrics {
                        m.heartbeat_age.set(age.as_secs_f64());
                    }
                    if s.live_handle.is_finished()
                        || s.generative.as_ref().is_some_and(|g| g.handle.is_finished())
                    {
                        Some(Detected::Dead)
                    } else if age > shared.config.liveness_deadline {
                        Some(Detected::Stalled)
                    } else {
                        None
                    }
                }
            }
        };
        if let Some(detected) = detected {
            bounce(shared, detected);
        }
    }
}

/// Tear the current incarnation down and respawn it under a fresh
/// generation stamp. The ordering is the contract: generation bumps
/// *first*, so every in-flight request sees the stamp change and returns
/// typed instead of hanging on a reply that will never come.
fn bounce(shared: &Arc<ReplicaShared>, detected: Detected) {
    shared.restarting.store(true, Ordering::SeqCst);
    let old = shared.lock_slot().take();
    let generation = shared.generation.fetch_add(1, Ordering::SeqCst) + 1;

    let mut cause = match detected {
        Detected::Stalled => RestartCause::Stall,
        Detected::Dead => RestartCause::Panic,
    };
    if let Some(slot) = old {
        // Dropping the client closes the job queue: queued jobs lose
        // their reply senders (typed Unavailable at the client), and a
        // merely-stalled loop exits once it wakes and finds the channel
        // closed.
        drop(slot.live_client);
        if slot.live_handle.is_finished() {
            match slot.live_handle.join() {
                Ok(served) => {
                    shared.served.fetch_add(served as u64, Ordering::SeqCst);
                    if detected == Detected::Dead {
                        cause = RestartCause::Exit;
                    }
                }
                Err(_) => cause = RestartCause::Panic,
            }
        }
        // else: stalled and still asleep — abandon it. The thread exits
        // on its own when the stall ends and the closed channel drains;
        // joining here would block the watchdog for the stall's duration.
        join_generative(slot.generative, shared.id);
    }

    shared.restarts.fetch_add(1, Ordering::SeqCst);
    if let Some(m) = &shared.metrics {
        m.restart(cause);
        m.generation.set(generation as f64);
    }

    std::thread::sleep(shared.config.restart_backoff);
    let parts = (shared.factory)(shared.id, generation);
    *shared.lock_slot() = Some(Slot::from_parts(parts));
    shared.restarting.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_table::CachedCost;
    use crate::live::spawn_core;
    use crate::scheduler::DpScheduler;
    use std::sync::Mutex;
    use tt_gpusim::device::DeviceKind;
    use tt_model::bert::{Bert, BertConfig};
    use tt_runtime::{RuntimeConfig, TurboRuntime};
    use tt_telemetry::Tracer;

    /// Chaos state is process-global; serialize the tests that arm it.
    static CHAOS: Mutex<()> = Mutex::new(());

    fn chaos_locked() -> std::sync::MutexGuard<'static, ()> {
        CHAOS.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn factory() -> ReplicaFactory {
        let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
        let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
        let costs =
            Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
        Arc::new(move |id, _generation| ReplicaParts {
            live: spawn_core(
                model.clone(),
                runtime.clone(),
                Arc::new(DpScheduler),
                costs.clone(),
                None,
                Tracer::disabled(),
                id,
            ),
            generative: None,
        })
    }

    fn quick_config() -> SupervisorConfig {
        SupervisorConfig {
            liveness_deadline: Duration::from_millis(150),
            poll_interval: Duration::from_millis(10),
            restart_backoff: Duration::from_millis(10),
        }
    }

    #[test]
    fn serves_requests_and_shuts_down_cleanly() {
        let _guard = chaos_locked();
        tt_chaos::disarm();
        let replica = SupervisedReplica::start(0, factory(), quick_config(), None);
        let resp = replica.infer_request(vec![5, 6, 7], None, None).expect("served");
        assert_eq!(resp.batch_size, 1);
        let report = replica.shutdown();
        assert_eq!(report.served, 1);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.generation, 0);
    }

    #[test]
    fn panic_is_detected_and_the_replica_restarts_with_a_fresh_generation() {
        let _guard = chaos_locked();
        // Every loop iteration panics while armed: the first incarnation
        // dies immediately; respawns crash-loop until disarm.
        tt_chaos::install(tt_chaos::ChaosConfig {
            replica_panic: 1.0,
            seed: 7,
            ..Default::default()
        });
        let replica = SupervisedReplica::start(0, factory(), quick_config(), None);
        // A request against a dead/bouncing replica fails typed, fast.
        let err = replica.infer_request(vec![5, 6, 7], None, None).unwrap_err();
        assert_eq!(err, LiveError::Unavailable);
        // Let the watchdog notice and bounce at least once.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while replica.restarts() == 0 {
            assert!(std::time::Instant::now() < deadline, "watchdog never bounced the replica");
            std::thread::sleep(Duration::from_millis(5));
        }
        tt_chaos::disarm();
        // The next healthy incarnation serves again.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match replica.infer_request(vec![5, 6, 7], None, None) {
                Ok(resp) => {
                    assert_eq!(resp.batch_size, 1);
                    break;
                }
                Err(_) => {
                    assert!(std::time::Instant::now() < deadline, "restarted replica never served");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        let report = replica.shutdown();
        assert!(report.restarts >= 1, "at least one bounce recorded");
        assert_eq!(report.generation, report.restarts, "one stamp per bounce");
    }

    #[test]
    fn stall_trips_the_liveness_deadline_and_pollers_never_hang() {
        let _guard = chaos_locked();
        // One long stall (longer than the liveness deadline), then quiet:
        // probability 1.0 would re-stall every iteration, so fire with
        // certainty but make the stall itself the detection window.
        tt_chaos::install(tt_chaos::ChaosConfig {
            replica_stall: 1.0,
            replica_stall_ms: 400,
            seed: 11,
            ..Default::default()
        });
        let replica = SupervisedReplica::start(0, factory(), quick_config(), None);
        // Submit into the stalled incarnation: the job sits in a queue the
        // loop never drains; the bounce must fail it typed — the recv
        // below returning at all *is* the no-hang guarantee.
        let start = std::time::Instant::now();
        let err = replica.infer_request(vec![5, 6, 7], None, None).unwrap_err();
        assert_eq!(err, LiveError::Unavailable);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "typed failure must beat the stall, not wait it out"
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while replica.restarts() == 0 {
            assert!(std::time::Instant::now() < deadline, "stall never detected");
            std::thread::sleep(Duration::from_millis(5));
        }
        tt_chaos::disarm();
        let report = replica.shutdown();
        assert!(report.restarts >= 1);
    }

    #[test]
    fn restart_cause_names_are_stable() {
        assert_eq!(RestartCause::Panic.name(), "panic");
        assert_eq!(RestartCause::Exit.name(), "exit");
        assert_eq!(RestartCause::Stall.name(), "stall");
    }
}
