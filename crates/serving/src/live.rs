//! A live, threaded serving engine — the paper's Figure 2 pipeline with
//! real threads and real numerics, not a discrete-event model.
//!
//! Client threads submit token sequences through a crossbeam channel; the
//! engine thread accumulates a message queue, invokes the batch scheduler
//! (hungry strategy: whenever the runtime is free and the queue non-empty),
//! zero-pads each scheduled batch with an attention mask, runs the real
//! `tt-runtime` executor, and delivers per-request responses through
//! one-shot channels. Exactly the paper's serving loop, scaled to CPU
//! execution speeds.
//!
//! The discrete-event simulator ([`crate::simulator`]) remains the tool for
//! throughput/latency *studies* (it replays hours of load in milliseconds);
//! this engine exists to prove the architecture runs end to end and to
//! serve as the integration point a real deployment would replace the
//! simulated clock with.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};

use tt_model::bert::Bert;
use tt_model::pad_batch;
use tt_runtime::TurboRuntime;
use tt_telemetry::{
    AttrValue, Counter, Gauge, Histogram, Registry, SpanContext, Stopwatch, Tracer,
};
use tt_tensor::Tensor;

use crate::cost_table::CachedCost;
use crate::deadline::Deadline;
use crate::request::Request;
use crate::scheduler::BatchScheduler;

/// Telemetry handles for the live engine, resolved once at startup. The
/// quantities mirror what the paper optimizes: queue wait (batching
/// delay), batch shape, zero-padding waste (§4.2), and the split between
/// scheduling and execution time per batch.
#[derive(Debug, Clone)]
pub struct LiveMetrics {
    /// Submission → batch-execution-start, per request, nanoseconds.
    queue_wait_ns: Arc<Histogram>,
    /// Requests per executed batch.
    batch_size: Arc<Histogram>,
    /// Scheduler invocation wall time, nanoseconds.
    schedule_ns: Arc<Histogram>,
    /// Batch execution wall time (pad + run), nanoseconds.
    execute_ns: Arc<Histogram>,
    /// Real tokens executed.
    real_tokens: Arc<Counter>,
    /// Zero-padding tokens executed (wasted work).
    padded_tokens: Arc<Counter>,
    /// Cumulative padding-waste ratio: padded / (real + padded).
    padding_waste: Arc<Gauge>,
    /// Requests served.
    requests: Arc<Counter>,
    /// Batches executed.
    batches: Arc<Counter>,
    /// Jobs sitting in the engine channel right now (enqueue/dequeue).
    queue_depth: Arc<Gauge>,
    /// Jobs found expired at the pre-schedule drain boundary.
    deadline_pre_schedule: Arc<Counter>,
    /// Jobs found expired at the pre-execute boundary (Algorithm 3 had
    /// already placed them in a batch; the batch runs without them).
    deadline_pre_execute: Arc<Counter>,
    /// Modeled microjoules attributed to each served request (its exact
    /// share of the executed batch's metered energy).
    request_energy_uj: Arc<Histogram>,
}

impl LiveMetrics {
    /// Register the live-engine metric family in `registry`.
    pub fn register(registry: &Registry) -> Self {
        LiveMetrics {
            queue_wait_ns: registry.histogram(
                "live_queue_wait_nanoseconds",
                "Time a request waits from submission until its batch starts executing",
                &[],
            ),
            batch_size: registry.histogram("live_batch_size", "Requests per executed batch", &[]),
            schedule_ns: registry.histogram(
                "live_schedule_nanoseconds",
                "Batch-scheduler wall time per serving-loop iteration",
                &[],
            ),
            execute_ns: registry.histogram(
                "live_execute_nanoseconds",
                "Wall time to pad and execute one batch",
                &[],
            ),
            real_tokens: registry.counter(
                "live_real_tokens_total",
                "Real (non-padding) tokens executed",
                &[],
            ),
            padded_tokens: registry.counter(
                "live_padded_tokens_total",
                "Zero-padding tokens executed — wasted work (paper section 4.2)",
                &[],
            ),
            padding_waste: registry.gauge(
                "live_padding_waste_ratio",
                "Cumulative padded / (real + padded) token ratio",
                &[],
            ),
            requests: registry.counter("live_requests_total", "Requests served", &[]),
            batches: registry.counter("live_batches_total", "Batches executed", &[]),
            queue_depth: registry.gauge(
                "live_queue_depth",
                "Jobs currently queued for the engine (incremented on submit, decremented when drained for batching)",
                &[],
            ),
            deadline_pre_schedule: registry.counter(
                "deadline_exceeded_total",
                "Requests dropped because their deadline expired, by stage boundary",
                &[("stage", "pre_schedule")],
            ),
            deadline_pre_execute: registry.counter(
                "deadline_exceeded_total",
                "Requests dropped because their deadline expired, by stage boundary",
                &[("stage", "pre_execute")],
            ),
            request_energy_uj: registry.histogram(
                "live_request_energy_microjoules",
                "Modeled microjoules attributed to each served request (exact share of its batch)",
                &[],
            ),
        }
    }

    fn observe_padding(&self, real: u64, padded: u64) {
        self.real_tokens.add(real);
        self.padded_tokens.add(padded);
        let total_real = self.real_tokens.get();
        let total_padded = self.padded_tokens.get();
        let denom = total_real + total_padded;
        if denom > 0 {
            self.padding_waste.set(total_padded as f64 / denom as f64);
        }
    }
}

/// How often a *supervised* engine loop wakes from an idle queue poll to
/// tick its heartbeat (an unsupervised loop blocks indefinitely instead).
const HEARTBEAT_POLL: Duration = Duration::from_millis(25);

/// A replica engine loop's liveness signal: a monotone beat counter plus
/// the wall-clock age of the latest beat, shared between the loop (which
/// ticks it every iteration, idle or busy) and the supervisor's watchdog
/// (which declares the replica stalled when the age crosses the liveness
/// deadline). Cheaply cloneable; all clones observe the same signal.
#[derive(Clone)]
pub struct Heartbeat {
    inner: Arc<HeartbeatInner>,
}

struct HeartbeatInner {
    /// Fixed epoch so beat timestamps are plain nanosecond offsets.
    epoch: Instant,
    last_beat_ns: AtomicU64,
    beats: AtomicU64,
}

impl Heartbeat {
    /// A fresh heartbeat, ticked once at creation (a replica is presumed
    /// alive until its first liveness deadline elapses).
    pub fn new() -> Self {
        let hb = Heartbeat {
            inner: Arc::new(HeartbeatInner {
                epoch: Instant::now(),
                last_beat_ns: AtomicU64::new(0),
                beats: AtomicU64::new(0),
            }),
        };
        hb.tick();
        hb
    }

    /// Record a beat now.
    pub fn tick(&self) {
        let now = self.inner.epoch.elapsed().as_nanos() as u64;
        self.inner.last_beat_ns.store(now, Ordering::Release);
        self.inner.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Wall-clock time since the latest beat.
    pub fn age(&self) -> Duration {
        let now = self.inner.epoch.elapsed().as_nanos() as u64;
        Duration::from_nanos(now.saturating_sub(self.inner.last_beat_ns.load(Ordering::Acquire)))
    }

    /// Total beats recorded.
    pub fn beats(&self) -> u64 {
        self.inner.beats.load(Ordering::Relaxed)
    }
}

impl Default for Heartbeat {
    fn default() -> Self {
        Self::new()
    }
}

/// Supervision context threaded into a replica's engine loop: the loop
/// ticks the heartbeat every iteration and exposes itself to the
/// replica-scoped chaos points under its fleet index.
struct Supervision {
    replica: usize,
    heartbeat: Heartbeat,
}

/// A submitted inference job.
struct Job {
    tokens: Vec<u32>,
    submitted: Instant,
    reply: Sender<Result<LiveResponse, LiveError>>,
    /// Root span context of a sampled request; the engine hangs its
    /// queue-wait / schedule / execute spans under it.
    trace: Option<SpanContext>,
    /// End-to-end deadline; the engine drops the job (with a typed reply,
    /// never silently) if it expires before execution starts.
    deadline: Option<Deadline>,
}

/// Why the engine did not answer a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveError {
    /// The engine is gone, or it dropped this job's batch instead of
    /// answering (poisoned batch — the engine survives, the job doesn't).
    Unavailable,
    /// The job's deadline expired while it waited in the queue or for its
    /// batch to start; serving it late would help nobody, so it was
    /// dropped at a stage boundary. The HTTP layer maps this to 504.
    DeadlineExceeded,
}

/// The engine's answer to one request.
#[derive(Debug)]
pub struct LiveResponse {
    /// Final hidden state of the first token (`[hidden]`) — the
    /// classification feature vector.
    pub cls_vector: Vec<f32>,
    /// Wall-clock latency from submission to completion.
    pub latency: std::time::Duration,
    /// How many requests shared the executed batch.
    pub batch_size: usize,
    /// Padded length of the executed batch.
    pub padded_len: usize,
    /// Modeled microjoules attributed to this request — its exact share of
    /// the executed batch's metered energy. Summing `energy_uj` over every
    /// response reconciles exactly (integer-exact, no float drift) with the
    /// runtime's [`tt_telemetry::EnergyMeter`] delta, because each batch's
    /// total is split as equal integer shares with the remainder spread
    /// over the first rows.
    pub energy_uj: u64,
}

/// Handle for submitting requests to a running engine.
#[derive(Clone)]
pub struct LiveClient {
    tx: Sender<Job>,
    /// Enqueue side of the `live_queue_depth` gauge (engine decrements).
    queue_depth: Option<Arc<Gauge>>,
}

impl LiveClient {
    /// Submit a token sequence; blocks until the engine responds.
    ///
    /// # Panics
    /// If the engine has shut down, or it dropped this job because its
    /// batch failed to execute (e.g. a token id outside the model's
    /// vocabulary). Use [`try_infer`](Self::try_infer) to handle those
    /// cases as values.
    pub fn infer(&self, tokens: Vec<u32>) -> LiveResponse {
        self.try_infer(tokens).expect("engine answers every accepted job")
    }

    /// Submit a token sequence; blocks until the engine responds. Returns
    /// `None` if the engine is gone or dropped the job's batch instead of
    /// answering (the engine survives poisoned batches by dropping their
    /// reply channels).
    pub fn try_infer(&self, tokens: Vec<u32>) -> Option<LiveResponse> {
        self.try_infer_traced(tokens, None)
    }

    /// [`try_infer`](Self::try_infer), carrying a sampled request's span
    /// context so the engine can record queue-wait, schedule and execute
    /// spans under it.
    pub fn try_infer_traced(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
    ) -> Option<LiveResponse> {
        self.infer_request(tokens, trace, None).ok()
    }

    /// The full-fidelity submission path: span context for tracing plus an
    /// optional end-to-end [`Deadline`]. Blocks until the engine answers
    /// or drops the job, and reports the drop reason as a typed
    /// [`LiveError`] — `DeadlineExceeded` when the deadline expired at an
    /// engine stage boundary, `Unavailable` for everything else.
    pub fn infer_request(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<LiveResponse, LiveError> {
        // A dropped reply channel (poisoned batch, engine shutdown) reads
        // as a closed channel here.
        self.submit_job(tokens, trace, deadline)?.recv().unwrap_or(Err(LiveError::Unavailable))
    }

    /// The submission half of [`infer_request`](Self::infer_request):
    /// enqueue the job and hand back its one-shot reply channel instead of
    /// blocking on it. A supervisor uses this to wait with a timeout and
    /// bail out with a typed error when the replica is torn down while the
    /// job is in flight — the caller must never hang on a bounced replica.
    pub fn submit_job(
        &self,
        tokens: Vec<u32>,
        trace: Option<SpanContext>,
        deadline: Option<Deadline>,
    ) -> Result<Receiver<Result<LiveResponse, LiveError>>, LiveError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Job { tokens, submitted: Instant::now(), reply: reply_tx, trace, deadline })
            .map_err(|_| LiveError::Unavailable)?;
        if let Some(depth) = &self.queue_depth {
            depth.add(1.0);
        }
        Ok(reply_rx)
    }
}

/// The running engine: owns the scheduler thread.
pub struct LiveEngine {
    client: Option<LiveClient>,
    handle: Option<JoinHandle<usize>>,
}

impl LiveEngine {
    /// Start an engine serving `model` on `runtime` with the given batch
    /// scheduler and cost table (the table steers the scheduler exactly as
    /// in the simulator).
    pub fn start(
        model: Arc<Bert>,
        runtime: Arc<TurboRuntime>,
        scheduler: Arc<dyn BatchScheduler>,
        costs: Arc<CachedCost>,
    ) -> Self {
        Self::start_inner(model, runtime, scheduler, costs, None, Tracer::disabled())
    }

    /// [`start`](Self::start), reporting queue-wait, batch-shape, padding
    /// and schedule/execute timing metrics into `registry`.
    pub fn start_instrumented(
        model: Arc<Bert>,
        runtime: Arc<TurboRuntime>,
        scheduler: Arc<dyn BatchScheduler>,
        costs: Arc<CachedCost>,
        registry: &Registry,
    ) -> Self {
        let metrics = LiveMetrics::register(registry);
        Self::start_inner(model, runtime, scheduler, costs, Some(metrics), Tracer::disabled())
    }

    /// [`start_instrumented`](Self::start_instrumented), additionally
    /// recording request-scoped spans into `tracer` for every job that
    /// arrives with a span context (see
    /// [`LiveClient::try_infer_traced`]).
    pub fn start_traced(
        model: Arc<Bert>,
        runtime: Arc<TurboRuntime>,
        scheduler: Arc<dyn BatchScheduler>,
        costs: Arc<CachedCost>,
        registry: &Registry,
        tracer: Tracer,
    ) -> Self {
        let metrics = LiveMetrics::register(registry);
        Self::start_inner(model, runtime, scheduler, costs, Some(metrics), tracer)
    }

    fn start_inner(
        model: Arc<Bert>,
        runtime: Arc<TurboRuntime>,
        scheduler: Arc<dyn BatchScheduler>,
        costs: Arc<CachedCost>,
        metrics: Option<LiveMetrics>,
        tracer: Tracer,
    ) -> Self {
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let queue_depth = metrics.as_ref().map(|m| m.queue_depth.clone());
        let handle = std::thread::Builder::new()
            .name("tt-serving-engine".into())
            .spawn(move || engine_loop(rx, model, runtime, scheduler, costs, metrics, tracer, None))
            .expect("spawning the engine thread");
        LiveEngine { client: Some(LiveClient { tx, queue_depth }), handle: Some(handle) }
    }

    /// A client handle (cheaply cloneable, usable from many threads).
    pub fn client(&self) -> LiveClient {
        self.client.as_ref().expect("engine not shut down").clone()
    }

    /// Shut down: stop accepting jobs, drain the queue, join the thread.
    /// Returns the number of requests served.
    pub fn shutdown(mut self) -> usize {
        // Drop our sender; the engine loop exits once every clone is gone
        // and the queue drains.
        self.client.take();
        let handle = self.handle.take().expect("shutdown runs once");
        handle.join().expect("engine thread exits cleanly")
    }
}

impl Drop for LiveEngine {
    fn drop(&mut self) {
        self.client.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The raw pieces of one spawned engine-loop thread, for a caller that
/// manages teardown and restart itself (the fleet supervisor), as opposed
/// to [`LiveEngine`], which owns its thread for the engine's whole life.
pub struct LiveCore {
    /// Submission handle for this replica.
    pub client: LiveClient,
    /// The loop's liveness signal (ticked every iteration, idle included).
    pub heartbeat: Heartbeat,
    /// Join handle; resolves to the number of requests served.
    pub handle: JoinHandle<usize>,
}

/// Spawn one *supervised* engine-loop thread serving `model`. Unlike
/// [`LiveEngine::start`], the caller owns teardown/restart: the loop polls
/// its queue with a timeout instead of blocking so the returned
/// [`Heartbeat`] ticks even when idle, and it honors the replica-scoped
/// chaos points ([`tt_chaos::replica_panic`] and friends) under fleet
/// index `replica`. When `registry` is `Some`, the loop reports into the
/// same unlabeled `live_*` metric families as a [`LiveEngine`] — replicas
/// sharing one registry aggregate into fleet-wide series.
pub fn spawn_core(
    model: Arc<Bert>,
    runtime: Arc<TurboRuntime>,
    scheduler: Arc<dyn BatchScheduler>,
    costs: Arc<CachedCost>,
    registry: Option<&Registry>,
    tracer: Tracer,
    replica: usize,
) -> LiveCore {
    let metrics = registry.map(LiveMetrics::register);
    let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
    let queue_depth = metrics.as_ref().map(|m| m.queue_depth.clone());
    let heartbeat = Heartbeat::new();
    let supervision = Supervision { replica, heartbeat: heartbeat.clone() };
    let handle = std::thread::Builder::new()
        .name(format!("tt-engine-replica-{replica}"))
        .spawn(move || {
            engine_loop(rx, model, runtime, scheduler, costs, metrics, tracer, Some(supervision))
        })
        .expect("spawning the replica engine thread");
    LiveCore { client: LiveClient { tx, queue_depth }, heartbeat, handle }
}

/// The hungry serving loop: block for one job, drain whatever else is
/// queued, schedule, execute batch by batch, repeat. Under supervision
/// the block becomes a heartbeat-ticking timeout poll, and the
/// replica-scoped chaos points hook the top of the loop — *outside* the
/// per-batch `catch_unwind`, so an injected replica panic kills the whole
/// thread exactly like a real one would.
#[allow(clippy::too_many_arguments)]
fn engine_loop(
    rx: Receiver<Job>,
    model: Arc<Bert>,
    runtime: Arc<TurboRuntime>,
    scheduler: Arc<dyn BatchScheduler>,
    costs: Arc<CachedCost>,
    metrics: Option<LiveMetrics>,
    tracer: Tracer,
    supervision: Option<Supervision>,
) -> usize {
    let mut served = 0usize;
    loop {
        let first = if let Some(s) = &supervision {
            s.heartbeat.tick();
            // Chaos: an injected replica panic propagates out of this
            // thread (the watchdog's job to detect); an injected stall
            // sleeps *without* ticking, so the liveness deadline fires.
            tt_chaos::replica_panic(s.replica);
            if let Some(stall) = tt_chaos::replica_stall(s.replica) {
                std::thread::sleep(stall);
            }
            match rx.recv_timeout(HEARTBEAT_POLL) {
                Ok(job) => job,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match rx.recv() {
                Ok(job) => job,
                Err(_) => break,
            }
        };
        // Drain the message queue (non-blocking) — the "requests that come
        // in a period of time" the scheduler packages.
        let mut jobs = vec![first];
        while jobs.len() < costs.max_batch() * 4 {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        if let Some(m) = &metrics {
            // Dequeue side of the depth gauge: these jobs now belong to
            // the batching stage, not the queue.
            m.queue_depth.add(-(jobs.len() as f64));
        }

        // Pre-schedule deadline boundary: jobs that expired while queued
        // are answered (typed, never silently dropped) before Algorithm 3
        // ever sees them — batches must not carry dead work.
        jobs.retain(|job| {
            if job.deadline.is_some_and(|d| d.expired()) {
                if let Some(m) = &metrics {
                    m.deadline_pre_schedule.inc();
                }
                let _ = job.reply.send(Err(LiveError::DeadlineExceeded));
                false
            } else {
                true
            }
        });
        if jobs.is_empty() {
            continue;
        }
        let any_traced = jobs.iter().any(|j| j.trace.is_some());

        // Scheduler speaks `Request`; lengths are what it batches on.
        let queue: Vec<Request> =
            jobs.iter().enumerate().map(|(i, j)| Request::new(i, j.tokens.len(), 0.0)).collect();
        let sched_start_ns = any_traced.then(|| tracer.now_ns());
        let schedule_watch = (metrics.is_some() || any_traced).then(Stopwatch::start);
        let batching = scheduler.schedule(&queue, &costs);
        let sched_nanos = schedule_watch.map(|w| w.elapsed_nanos()).unwrap_or(0);
        if let Some(m) = &metrics {
            m.schedule_ns.record(sched_nanos);
        }
        let splits = batching.len();

        for batch in batching {
            if let Some(s) = &supervision {
                // Still alive between batches; chaos can make the replica
                // *slow* here — heartbeat ticking, latency inflating — the
                // degraded mode the router's health machine must notice.
                s.heartbeat.tick();
                if let Some(delay) = tt_chaos::replica_slow(s.replica) {
                    std::thread::sleep(delay);
                }
            }
            // Pre-execute deadline boundary: the scheduler may have queued
            // several batches back to back, and earlier batches' execution
            // time can expire later batches' members. Drop them now and
            // re-pad — running them would waste GEMM time on dead work.
            let (batch, expired): (Vec<usize>, Vec<usize>) =
                batch.into_iter().partition(|&i| !jobs[i].deadline.is_some_and(|d| d.expired()));
            for i in expired {
                if let Some(m) = &metrics {
                    m.deadline_pre_execute.inc();
                }
                let _ = jobs[i].reply.send(Err(LiveError::DeadlineExceeded));
            }
            if batch.is_empty() {
                continue;
            }
            let rows: Vec<&[u32]> = batch.iter().map(|&i| jobs[i].tokens.as_slice()).collect();
            let (ids, mask, padded_len) = pad_batch(&rows);
            let real: u64 = rows.iter().map(|r| r.len() as u64).sum();
            let padded = (padded_len * batch.len()) as u64 - real;
            let waste = padded as f64 / (real + padded).max(1) as f64;
            if let Some(m) = &metrics {
                // Queue wait ends when the batch starts executing.
                for &i in &batch {
                    m.queue_wait_ns.record_duration(jobs[i].submitted.elapsed());
                }
                m.batch_size.record(batch.len() as u64);
            }

            // Sampled jobs get their span-tree stages recorded now that
            // the batch decision is known: the retroactive queue-wait and
            // schedule spans, plus a live execute span whose context the
            // executor hangs alloc-plan and per-op spans under.
            let mut exec_spans = Vec::new();
            for &i in &batch {
                let Some(ctx) = jobs[i].trace else { continue };
                let wait_start = tracer.ns_of(jobs[i].submitted);
                tracer.record_span(
                    ctx.trace,
                    Some(ctx.span),
                    "queue_wait",
                    wait_start,
                    tracer.now_ns().saturating_sub(wait_start),
                    vec![("queue_len", AttrValue::Int(jobs.len() as i64))],
                );
                tracer.record_span(
                    ctx.trace,
                    Some(ctx.span),
                    "schedule",
                    sched_start_ns.unwrap_or(0),
                    sched_nanos,
                    vec![
                        ("splits", AttrValue::Int(splits as i64)),
                        ("batch_size", AttrValue::Int(batch.len() as i64)),
                        ("padding_waste", AttrValue::Float(waste)),
                    ],
                );
                let mut span = tracer.span(ctx, "execute");
                span.attr_int("batch_size", batch.len() as i64);
                span.attr_int("padded_len", padded_len as i64);
                exec_spans.push(span);
            }
            let exec_ctxs: Vec<SpanContext> = exec_spans.iter().map(|s| s.context()).collect();
            let hook = (!exec_ctxs.is_empty()).then_some((&tracer, exec_ctxs.as_slice()));

            let execute_watch = Stopwatch::start();
            // A poisoned batch (length beyond the model limit, token id
            // outside the vocabulary, …) must not take the engine down: the
            // affected jobs' reply channels are dropped — their clients see
            // a closed channel, the HTTP layer maps that to 503 — and the
            // loop keeps serving everyone else.
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if batch.len() == 1 {
                    runtime.run_bert_traced(&model, &ids, hook)
                } else {
                    runtime.run_bert_masked_traced(&model, &ids, &mask, hook)
                }
            }));
            drop(exec_spans); // record the execute spans' wall time
            let run = match run {
                Ok(Ok(run)) => run,
                Ok(Err(err)) => {
                    eprintln!("tt-serving: dropping batch of {}: {err:?}", batch.len());
                    continue;
                }
                Err(_panic) => {
                    eprintln!("tt-serving: dropping batch of {}: executor panicked", batch.len());
                    continue;
                }
            };
            let exec_nanos = execute_watch.elapsed_nanos();
            // Feedback path: the completed batch's wall time refreshes the
            // scheduler's cost table (no-op unless the table was built
            // `with_online_updates`).
            costs.observe(padded_len, batch.len(), exec_nanos as f64 / 1e9);
            if let Some(m) = &metrics {
                m.execute_ns.record(exec_nanos);
                m.batches.inc();
                m.requests.add(batch.len() as u64);
                m.observe_padding(real, padded);
            }

            // Attribute the batch's metered joules to its members exactly:
            // equal integer shares, remainder microjoules to the first
            // rows, so Σ per-request energy == the meter's counter delta.
            let n = batch.len() as u64;
            let energy_share = run.energy_uj / n;
            let energy_rem = (run.energy_uj % n) as usize;
            for (row, &job_idx) in batch.iter().enumerate() {
                let job = &jobs[job_idx];
                let cls = cls_vector(&run.encoder_output, row);
                let energy_uj = energy_share + u64::from(row < energy_rem);
                if let Some(m) = &metrics {
                    m.request_energy_uj.record(energy_uj);
                }
                let _ = job.reply.send(Ok(LiveResponse {
                    cls_vector: cls,
                    latency: job.submitted.elapsed(),
                    batch_size: batch.len(),
                    padded_len,
                    energy_uj,
                }));
                served += 1;
            }
        }
    }
    served
}

/// Extract the `[CLS]`-position hidden vector of batch row `row`.
fn cls_vector(encoder_output: &Tensor, row: usize) -> Vec<f32> {
    let dims = encoder_output.shape().dims();
    let (seq, hidden) = (dims[1], dims[2]);
    let start = row * seq * hidden;
    encoder_output.as_slice()[start..start + hidden].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::DpScheduler;
    use tt_gpusim::device::DeviceKind;
    use tt_model::bert::BertConfig;
    use tt_model::ids_batch;
    use tt_runtime::RuntimeConfig;

    fn engine() -> (LiveEngine, Arc<Bert>) {
        let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
        let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
        let costs =
            Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
        let eng = LiveEngine::start(model.clone(), runtime, Arc::new(DpScheduler), costs);
        (eng, model)
    }

    #[test]
    fn serves_one_request_with_correct_numerics() {
        let (eng, model) = engine();
        let tokens = vec![5u32, 6, 7, 8];
        let resp = eng.client().infer(tokens.clone());
        let expect = model.forward(&ids_batch(&[&tokens]), None);
        let hidden = model.config.model_dim();
        for (a, b) in resp.cls_vector.iter().zip(&expect.as_slice()[..hidden]) {
            assert!((a - b).abs() < 1e-4, "live engine must match eager forward");
        }
        assert_eq!(eng.shutdown(), 1);
    }

    #[test]
    fn serves_concurrent_variable_length_clients() {
        let (eng, model) = engine();
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let client = eng.client();
            handles.push(std::thread::spawn(move || {
                let len = 3 + (t as usize % 5) * 7;
                let tokens: Vec<u32> = (0..len as u32).map(|i| (i + t) % 90).collect();
                (tokens.clone(), client.infer(tokens))
            }));
        }
        let results: Vec<(Vec<u32>, LiveResponse)> =
            handles.into_iter().map(|h| h.join().expect("client thread")).collect();
        assert_eq!(eng.shutdown(), 8);

        let hidden = model.config.model_dim();
        for (tokens, resp) in results {
            assert_eq!(resp.cls_vector.len(), hidden);
            // Batched+padded execution must still match standalone math.
            let expect = model.forward(&ids_batch(&[&tokens]), None);
            for (a, b) in resp.cls_vector.iter().zip(&expect.as_slice()[..hidden]) {
                assert!(
                    (a - b).abs() < 2e-3,
                    "padded batch response diverged (batch {}, padded {})",
                    resp.batch_size,
                    resp.padded_len
                );
            }
        }
    }

    #[test]
    fn engine_survives_a_poisoned_batch() {
        let (eng, _model) = engine();
        // Token 500 is outside the tiny config's 97-word vocabulary: the
        // embed kernel panics, the engine drops the batch — and must keep
        // serving afterwards instead of dying with the batch.
        assert!(eng.client().try_infer(vec![500, 1, 2]).is_none(), "poisoned job is dropped");
        let resp = eng.client().try_infer(vec![5, 6, 7]).expect("engine still serves");
        assert_eq!(resp.batch_size, 1);
        assert_eq!(eng.shutdown(), 1, "only the healthy request was served");
    }

    #[test]
    fn shutdown_with_no_traffic_is_clean() {
        let (eng, _model) = engine();
        assert_eq!(eng.shutdown(), 0);
    }

    #[test]
    fn expired_job_is_answered_with_a_typed_504_at_the_pre_schedule_boundary() {
        let registry = Registry::new();
        let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
        let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
        let costs =
            Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
        let eng =
            LiveEngine::start_instrumented(model, runtime, Arc::new(DpScheduler), costs, &registry);
        let client = eng.client();

        // Already expired at submission: the engine must answer with the
        // typed error before Algorithm 3 ever sees the job.
        let dead = Deadline::at(Instant::now());
        assert_eq!(
            client.infer_request(vec![5, 6, 7], None, Some(dead)).unwrap_err(),
            LiveError::DeadlineExceeded
        );
        // A live deadline sails through.
        let live = Deadline::within(std::time::Duration::from_secs(30));
        let resp = client.infer_request(vec![5, 6, 7], None, Some(live)).expect("within deadline");
        assert_eq!(resp.batch_size, 1);
        drop(client); // the engine drains until every client handle is gone
        assert_eq!(eng.shutdown(), 1, "only the live request counts as served");

        let snap = registry.snapshot();
        let pre_schedule = snap
            .find("deadline_exceeded_total", &[("stage", "pre_schedule")])
            .and_then(|f| f.counter);
        assert_eq!(pre_schedule, Some(1));
        let pre_execute = snap
            .find("deadline_exceeded_total", &[("stage", "pre_execute")])
            .and_then(|f| f.counter);
        assert_eq!(pre_execute, Some(0), "family is registered even when it never fires");
    }

    #[test]
    fn job_expiring_during_scheduling_is_dropped_at_the_pre_execute_boundary() {
        /// Sleeps inside Algorithm 3 — a deterministic stand-in for
        /// "earlier batches' execution expired later batches' members".
        struct SlowScheduler(std::time::Duration);
        impl BatchScheduler for SlowScheduler {
            fn schedule(
                &self,
                queue: &[Request],
                costs: &CachedCost,
            ) -> crate::scheduler::Batching {
                std::thread::sleep(self.0);
                DpScheduler.schedule(queue, costs)
            }
            fn name(&self) -> &'static str {
                "slow"
            }
        }

        let registry = Registry::new();
        let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
        let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
        let costs =
            Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
        let eng = LiveEngine::start_instrumented(
            model,
            runtime,
            Arc::new(SlowScheduler(std::time::Duration::from_millis(60))),
            costs,
            &registry,
        );

        // Alive at the pre-schedule drain, expired by the time its batch
        // would execute (the scheduler itself burns the budget).
        let d = Deadline::within(std::time::Duration::from_millis(20));
        assert_eq!(
            eng.client().infer_request(vec![5, 6, 7], None, Some(d)).unwrap_err(),
            LiveError::DeadlineExceeded
        );
        assert_eq!(eng.shutdown(), 0);

        let snap = registry.snapshot();
        let pre_execute = snap
            .find("deadline_exceeded_total", &[("stage", "pre_execute")])
            .and_then(|f| f.counter);
        assert_eq!(pre_execute, Some(1), "the drop happened after scheduling, not before");
    }

    #[test]
    fn traced_engine_records_span_tree_queue_depth_and_cost_feedback() {
        use tt_telemetry::{Tracer, TracerConfig};
        let registry = Registry::new();
        let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
        let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
        let costs = Arc::new(
            CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64)
                .with_online_updates(0.3),
        );
        let tracer = Tracer::new(TracerConfig { sample_every: 1, ..TracerConfig::default() });
        let eng = LiveEngine::start_traced(
            model,
            runtime,
            Arc::new(DpScheduler),
            costs.clone(),
            &registry,
            tracer.clone(),
        );

        let root = tracer.start_root("http", false).expect("1-in-1 sampling");
        let ctx = root.context();
        let tokens = vec![5u32, 6, 7, 8];
        let resp =
            eng.client().try_infer_traced(tokens, Some(ctx)).expect("traced request is served");
        drop(root);
        assert_eq!(eng.shutdown(), 1);

        // The engine recorded the pipeline stages under the root context.
        let spans = tracer.spans_of(ctx.trace);
        for stage in ["http", "queue_wait", "schedule", "execute", "alloc_plan", "matmul"] {
            assert!(spans.iter().any(|s| s.name == stage), "missing {stage} span");
        }
        let schedule = spans.iter().find(|s| s.name == "schedule").unwrap();
        assert!(
            schedule.attrs.iter().any(|(k, _)| *k == "padding_waste"),
            "schedule span must carry the padding-waste attribute"
        );
        let execute = spans.iter().find(|s| s.name == "execute").unwrap();
        let plan = spans.iter().find(|s| s.name == "alloc_plan").unwrap();
        assert_eq!(plan.parent, Some(execute.span), "alloc_plan nests inside execute");

        // The completed batch refreshed the online cost table.
        assert!(
            costs.observed_cost(resp.padded_len, resp.batch_size).is_some(),
            "EWMA cell for the executed shape must be populated"
        );

        // The queue-depth gauge exists and returns to zero once drained.
        let depth = registry.snapshot().find("live_queue_depth", &[]).unwrap().gauge.unwrap();
        assert_eq!(depth, 0.0, "all submitted jobs were dequeued");
    }

    #[test]
    fn queue_depth_gauge_rises_while_jobs_wait() {
        // Stall the engine with a first slow request, pile more behind it,
        // and watch the gauge: enqueues outpace dequeues.
        let registry = Registry::new();
        let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
        let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
        let costs =
            Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
        let eng =
            LiveEngine::start_instrumented(model, runtime, Arc::new(DpScheduler), costs, &registry);
        let gauge = registry.snapshot().find("live_queue_depth", &[]).is_some();
        assert!(gauge, "gauge is registered at startup");

        let mut handles = Vec::new();
        for t in 0..6u32 {
            let client = eng.client();
            handles.push(std::thread::spawn(move || {
                client.infer((0..40u32).map(|i| (i + t) % 90).collect())
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
        assert_eq!(eng.shutdown(), 6);
        let depth = registry.snapshot().find("live_queue_depth", &[]).unwrap().gauge.unwrap();
        assert_eq!(depth, 0.0, "gauge balances to zero after the queue drains");
    }

    #[test]
    fn per_request_energy_shares_reconcile_exactly_with_the_meter() {
        use tt_telemetry::{EnergyMeter, EnergyPhase};
        let registry = Registry::new();
        let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
        let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
        let meter = Arc::new(EnergyMeter::new());
        runtime.instrument_energy(meter.clone());
        let costs =
            Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
        let eng =
            LiveEngine::start_instrumented(model, runtime, Arc::new(DpScheduler), costs, &registry);

        // Concurrent variable-length streams: batches form nondeterministically,
        // splits are uneven, remainders exercise the integer distribution.
        let mut handles = Vec::new();
        for t in 0..10u32 {
            let client = eng.client();
            handles.push(std::thread::spawn(move || {
                let len = 3 + (t as usize % 4) * 11;
                client.infer((0..len as u32).map(|i| (i + t) % 90).collect()).energy_uj
            }));
        }
        let shares: Vec<u64> = handles.into_iter().map(|h| h.join().expect("client")).collect();
        assert_eq!(eng.shutdown(), 10);

        assert!(shares.iter().all(|&e| e > 0), "every request carries modeled joules");
        assert_eq!(
            shares.iter().sum::<u64>(),
            meter.phase_uj(EnergyPhase::Prefill),
            "per-request shares must sum exactly to the meter's counter delta"
        );
        // The per-request histogram saw every share.
        let hist = registry
            .snapshot()
            .find("live_request_energy_microjoules", &[])
            .unwrap()
            .histogram
            .clone()
            .unwrap();
        assert_eq!(hist.count(), 10);
    }

    #[test]
    fn instrumented_engine_reports_serving_metrics() {
        let registry = Registry::new();
        let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
        let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
        runtime.instrument(&registry);
        let costs =
            Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
        let scheduler = Arc::new(crate::scheduler::InstrumentedScheduler::new(
            Arc::new(DpScheduler),
            &registry,
        ));
        let eng = LiveEngine::start_instrumented(model, runtime, scheduler, costs, &registry);

        let mut handles = Vec::new();
        for t in 0..6u32 {
            let client = eng.client();
            handles.push(std::thread::spawn(move || {
                let len = 4 + (t as usize % 3) * 9;
                client.infer((0..len as u32).collect())
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
        assert_eq!(eng.shutdown(), 6);

        let snap = registry.snapshot();
        assert_eq!(snap.find("live_requests_total", &[]).unwrap().counter, Some(6));
        let wait = snap.find("live_queue_wait_nanoseconds", &[]).unwrap();
        let wait_h = wait.histogram.as_ref().unwrap();
        assert_eq!(wait_h.count(), 6, "every request records one queue wait");
        assert!(wait_h.sum > 0, "queue wait must be nonzero wall time");
        let exec = snap.find("live_execute_nanoseconds", &[]).unwrap().histogram.clone().unwrap();
        let sched = snap.find("live_schedule_nanoseconds", &[]).unwrap().histogram.clone().unwrap();
        assert!(exec.count() > 0 && sched.count() > 0);
        assert!(snap.find("live_real_tokens_total", &[]).unwrap().counter.unwrap() > 0);
        // The wrapped scheduler and instrumented runtime report too.
        assert!(snap.find("scheduler_nanoseconds", &[("scheduler", DpScheduler.name())]).is_some());
        assert!(snap.find("executor_op_nanoseconds", &[("op", "matmul")]).is_some());
        // Waste ratio is a valid fraction (zero if every batch was uniform).
        let waste = snap.find("live_padding_waste_ratio", &[]).unwrap().gauge.unwrap();
        assert!((0.0..1.0).contains(&waste));
    }
}
