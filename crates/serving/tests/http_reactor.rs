//! Reactor-driver edge cases: the failure modes a readiness-driven event
//! loop must get right that a thread-per-connection server gets "for
//! free" from blocking socket timeouts.
//!
//! Every server here pins [`DriverKind::Reactor`] explicitly (no
//! `TT_HTTP_DRIVER` environment races between tests): slow-loris partial
//! requests hitting the timer wheel, mid-stream client disconnects
//! releasing engine-side resources, pipelined keep-alive requests spread
//! across separate readiness wakeups, a 512-socket concurrency smoke, and
//! graceful shutdown draining registered connections.

#![cfg(target_os = "linux")]

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use tt_serving::http::{
    DriverKind, GenerateHandler, HttpConfig, HttpServer, InferError, InferHandler, InferReply,
};
use tt_serving::{Deadline, TokenEvent};
use tt_telemetry::{Registry, SpanContext, Tracer};

/// Echo backend: the reply's `cls_vector` mirrors the request tokens, so
/// response ordering is observable on the wire.
struct EchoHandler;

impl InferHandler for EchoHandler {
    fn infer(&self, tokens: Vec<u32>) -> Result<InferReply, InferError> {
        Ok(InferReply {
            cls_vector: tokens.iter().map(|&t| t as f32).collect(),
            latency_ms: 0.1,
            batch_size: 1,
            padded_len: tokens.len(),
        })
    }
}

/// Parks every inference until released; counts starts so tests can wait
/// for a request to be provably in flight.
struct GatedHandler {
    started: AtomicUsize,
    release: Mutex<mpsc::Receiver<()>>,
}

impl InferHandler for GatedHandler {
    fn infer(&self, tokens: Vec<u32>) -> Result<InferReply, InferError> {
        self.started.fetch_add(1, Ordering::SeqCst);
        let rx = self.release.lock().unwrap();
        let _ = rx.recv_timeout(Duration::from_secs(10));
        Ok(InferReply {
            cls_vector: vec![0.0],
            latency_ms: 1.0,
            batch_size: 1,
            padded_len: tokens.len(),
        })
    }
}

fn reactor_server(
    handler: Arc<dyn InferHandler>,
    tweak: impl FnOnce(&mut HttpConfig),
) -> (HttpServer, Registry) {
    let registry = Registry::new();
    let mut config = HttpConfig { addr: "127.0.0.1:0".into(), ..HttpConfig::default() };
    tweak(&mut config);
    let server = HttpServer::start_with_driver(
        config,
        handler,
        None,
        &registry,
        Tracer::disabled(),
        None,
        DriverKind::Reactor,
    )
    .expect("server starts");
    assert_eq!(server.driver(), DriverKind::Reactor, "test must exercise the reactor");
    (server, registry)
}

fn read_all(stream: &mut TcpStream) -> String {
    let mut buf = String::new();
    let _ = stream.read_to_string(&mut buf);
    buf
}

fn infer_request(tokens: &[u32], close: bool) -> String {
    let body = format!(
        "{{\"tokens\": [{}]}}",
        tokens.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
    );
    let conn = if close { "Connection: close\r\n" } else { "" };
    format!(
        "POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{conn}\r\n{body}",
        body.len()
    )
}

/// A slow-loris client — request head trickling in, never completing —
/// must get `408` from the timer wheel, not hold a connection slot
/// forever and not occupy any thread while it stalls.
#[test]
fn slow_loris_partial_head_gets_408_from_timer_wheel() {
    let (server, registry) =
        reactor_server(Arc::new(EchoHandler), |c| c.read_timeout = Duration::from_millis(120));

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(b"POST /v1/infer HTTP/1.1\r\nHost: t\r\nCont").expect("partial head");
    // Send nothing more; the read deadline must fire on its own.
    let start = Instant::now();
    let resp = read_all(&mut stream);
    assert!(resp.starts_with("HTTP/1.1 408"), "stalled request gets 408, got: {resp:?}");
    assert!(start.elapsed() >= Duration::from_millis(100), "408 waits for the deadline");
    assert!(start.elapsed() < Duration::from_secs(3), "408 does not wait for default timeouts");

    // The wheel fired at least once, and the stall is visible in metrics.
    let snap = registry.snapshot();
    let fires = snap.find("reactor_timer_fires_total", &[]).unwrap().counter.unwrap();
    assert!(fires >= 1, "timer wheel fired for the stalled read, got {fires}");
    server.shutdown();
}

/// An idle keep-alive connection (no bytes at all) is closed silently at
/// the read deadline — no `408`, just EOF.
#[test]
fn idle_keepalive_connection_expires_silently() {
    let (server, _registry) =
        reactor_server(Arc::new(EchoHandler), |c| c.read_timeout = Duration::from_millis(120));
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let resp = read_all(&mut stream);
    assert!(resp.is_empty(), "idle expiry closes without a response, got: {resp:?}");
    server.shutdown();
}

/// Generation backend whose event channel the test feeds by hand: the
/// sender's failure is the observable proof that a client disconnect
/// propagated through the reactor and stream mux to the engine side —
/// exactly the signal the real engine uses to retire a sequence and free
/// its KV pages.
struct ManualStream {
    senders: Mutex<Vec<crossbeam::channel::Sender<TokenEvent>>>,
}

impl GenerateHandler for ManualStream {
    fn generate(
        &self,
        _prompt: Vec<u32>,
        _max_new_tokens: usize,
        _trace: Option<SpanContext>,
        _deadline: Option<Deadline>,
    ) -> Result<crossbeam::channel::Receiver<TokenEvent>, InferError> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.senders.lock().unwrap().push(tx);
        Ok(rx)
    }
}

#[test]
fn mid_stream_client_disconnect_releases_engine_side_stream() {
    let backend = Arc::new(ManualStream { senders: Mutex::new(Vec::new()) });
    let registry = Registry::new();
    let config = HttpConfig { addr: "127.0.0.1:0".into(), ..HttpConfig::default() };
    let server = HttpServer::start_with_driver(
        config,
        Arc::new(EchoHandler),
        Some(backend.clone() as Arc<dyn GenerateHandler>),
        &registry,
        Tracer::disabled(),
        None,
        DriverKind::Reactor,
    )
    .expect("server starts");

    let body = "{\"prompt\": [1, 2], \"max_new_tokens\": 64}";
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(
            format!(
                "POST /v1/generate HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write request");

    // Wait for admission, then emit one token so the 200 head commits.
    let deadline = Instant::now() + Duration::from_secs(5);
    let tx = loop {
        if let Some(tx) = backend.senders.lock().unwrap().first().cloned() {
            break tx;
        }
        assert!(Instant::now() < deadline, "stream never admitted");
        std::thread::sleep(Duration::from_millis(5));
    };
    tx.send(TokenEvent::Token { index: 0, token: 7 }).expect("stream is live");

    // Read the head + first chunk, then vanish mid-stream.
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut first = [0u8; 1];
    stream.read_exact(&mut first).expect("stream head arrives");
    drop(stream);

    // The reactor must notice the hangup and cancel the mux entry, which
    // drops the engine-side receiver: our next sends start failing. In
    // the real engine that same drop retires the sequence and frees its
    // KV pages the same decode iteration.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        std::thread::sleep(Duration::from_millis(10));
        if tx.send(TokenEvent::Token { index: 1, token: 8 }).is_err() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect never propagated to the engine-side channel"
        );
    }
    server.shutdown();
}

/// Pipelined keep-alive requests spread across separate readiness
/// wakeups: a burst of three in one write, then — after the reactor has
/// gone back to sleep — a fourth on the same connection. Responses come
/// back in order with request-identifying bodies.
#[test]
fn pipelined_keepalive_requests_across_wakeups_stay_ordered() {
    let (server, _registry) = reactor_server(Arc::new(EchoHandler), |_| {});
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    let burst: String =
        [&[11u32][..], &[22], &[33]].iter().map(|tokens| infer_request(tokens, false)).collect();
    stream.write_all(burst.as_bytes()).expect("write pipelined burst");

    let mut seen = String::new();
    let mut chunk = [0u8; 4096];
    for marker in ["[11.0]", "[22.0]", "[33.0]"] {
        while !seen.contains(marker) {
            let n = stream.read(&mut chunk).expect("burst responses");
            assert!(n > 0, "connection closed before {marker}; got: {seen}");
            seen.push_str(&String::from_utf8_lossy(&chunk[..n]));
        }
    }
    for (earlier, later) in [("[11.0]", "[22.0]"), ("[22.0]", "[33.0]")] {
        assert!(
            seen.find(earlier).unwrap() < seen.find(later).unwrap(),
            "pipelined responses out of order: {seen}"
        );
    }

    // Let the reactor return to epoll_wait, then reuse the connection on
    // a fresh readiness edge.
    std::thread::sleep(Duration::from_millis(50));
    stream.write_all(infer_request(&[44], true).as_bytes()).expect("write follow-up");
    let tail = read_all(&mut stream);
    assert!(tail.contains("[44.0]"), "follow-up served on same connection: {tail}");
    server.shutdown();
}

/// 512 concurrent sockets — far beyond any worker-thread count — all
/// held open at once, then all served, with zero connect/accept errors.
#[test]
fn five_hundred_twelve_concurrent_sockets_all_served() {
    const SOCKETS: usize = 512;
    let (server, registry) = reactor_server(Arc::new(EchoHandler), |_| {});
    let addr: SocketAddr = server.addr();

    let mut sockets = Vec::with_capacity(SOCKETS);
    for i in 0..SOCKETS {
        let stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect #{i}: {e}"));
        sockets.push(stream);
    }
    // Every socket is open simultaneously before any is served.
    for stream in &mut sockets {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("write");
    }
    let mut served = 0usize;
    for mut stream in sockets {
        let resp = read_all(&mut stream);
        assert!(resp.starts_with("HTTP/1.1 200"), "socket got: {resp:?}");
        served += 1;
    }
    assert_eq!(served, SOCKETS);

    // The loop's own health metrics saw the swarm.
    let snap = registry.snapshot();
    let wakeups = snap.find("reactor_wakeups_total", &[]).unwrap().counter.unwrap();
    assert!(wakeups >= 1);
    assert!(snap.find("reactor_registered_fds", &[]).is_some());
    assert!(snap.find("reactor_ready_events_per_wake", &[]).is_some());
    server.shutdown();
}

/// Graceful shutdown with live registered connections: the in-flight
/// request completes (drained, not dropped), the idle keep-alive
/// connection is closed, and only then does the listener port die.
#[test]
fn shutdown_drains_registered_connections() {
    let (release_tx, release_rx) = mpsc::channel();
    let gated =
        Arc::new(GatedHandler { started: AtomicUsize::new(0), release: Mutex::new(release_rx) });
    let (server, _registry) = reactor_server(gated.clone(), |_| {});
    let addr = server.addr();

    // One idle keep-alive connection (served, then parked open)...
    let mut idle = TcpStream::connect(addr).expect("connect idle");
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    idle.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("write");
    let mut chunk = [0u8; 1024];
    let n = idle.read(&mut chunk).expect("healthz response");
    assert!(String::from_utf8_lossy(&chunk[..n]).starts_with("HTTP/1.1 200"));

    // ...and one connection with a request parked inside the handler.
    let mut busy = TcpStream::connect(addr).expect("connect busy");
    busy.write_all(infer_request(&[5], true).as_bytes()).expect("write");
    let deadline = Instant::now() + Duration::from_secs(5);
    while gated.started.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "request never reached the handler");
        std::thread::sleep(Duration::from_millis(5));
    }

    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(100));
    release_tx.send(()).expect("release the parked request");

    // The parked request drains to a complete response...
    let resp = read_all(&mut busy);
    assert!(resp.starts_with("HTTP/1.1 200"), "drained response, got: {resp:?}");
    assert!(resp.contains("cls_vector"), "drained response has a body: {resp}");
    // ...the idle connection is closed (EOF, not a hang)...
    match idle.read(&mut chunk) {
        Ok(0) => {}
        Ok(n) => panic!("idle conn got unexpected bytes: {:?}", &chunk[..n]),
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
            panic!("idle connection not closed by shutdown")
        }
        Err(_) => {} // reset is fine too
    }
    // ...and the listener is gone once shutdown returns.
    let final_metrics = shutdown.join().expect("shutdown thread");
    assert!(final_metrics.contains("http_requests_total"));
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener port must be closed after graceful shutdown"
    );
}
