//! Property tests of the fleet retry layer's backoff and budget math.
//!
//! The decorrelated-jitter backoff (`sleep = min(cap, uniform(base,
//! prev·3))`) is the piece of the retry layer most prone to silent
//! regression: an off-by-one in the clamp turns "bounded sleeps" into
//! "unbounded sleeps" and a seeding bug turns "replayable drills" into
//! "flaky drills". The properties pin the contract for arbitrary
//! configurations:
//!
//! - every sleep lies within `[base, max(base, cap)]`, for any seed,
//!   stream and (possibly degenerate) base/cap pair;
//! - the same `(seed, stream)` pair replays the exact same sleep
//!   schedule — determinism is what makes a chaos drill reproducible;
//! - the retry budget never goes negative and never exceeds its cap,
//!   under any interleaving of deposits and withdrawals.

use std::time::Duration;

use proptest::prelude::*;

use tt_serving::{Backoff, RetryBudget, RetryConfig};

proptest! {
    #[test]
    fn every_sleep_lies_within_base_and_cap(
        seed in 0u64..=u64::MAX,
        stream in 0u64..=u64::MAX,
        base_ms in 1u64..50,
        cap_ms in 1u64..500,
    ) {
        let config = RetryConfig {
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(cap_ms),
            seed,
            ..RetryConfig::default()
        };
        // A cap below base is a misconfiguration the backoff must absorb
        // by degenerating to constant-base, not by panicking or inverting
        // the clamp.
        let lo = config.base;
        let hi = config.cap.max(config.base);
        let mut backoff = Backoff::new(&config, stream);
        for _ in 0..64 {
            let sleep = backoff.next_sleep();
            prop_assert!(sleep >= lo, "sleep {sleep:?} under base {lo:?}");
            prop_assert!(sleep <= hi, "sleep {sleep:?} over cap {hi:?}");
        }
    }

    #[test]
    fn same_seed_and_stream_replays_the_same_schedule(
        seed in 0u64..=u64::MAX,
        stream in 0u64..=u64::MAX,
    ) {
        let config = RetryConfig { seed, ..RetryConfig::default() };
        let schedule = |stream: u64| {
            let mut backoff = Backoff::new(&config, stream);
            (0..32).map(|_| backoff.next_sleep()).collect::<Vec<_>>()
        };
        prop_assert_eq!(schedule(stream), schedule(stream));
    }

    #[test]
    fn budget_stays_within_zero_and_cap_under_any_interleaving(
        ops in prop::collection::vec(prop::bool::ANY, 1..200),
        ratio in 0.0f64..1.0,
        cap in 0.0f64..8.0,
    ) {
        let budget = RetryBudget::new(ratio, cap);
        for deposit in ops {
            if deposit {
                budget.deposit();
            } else {
                let _ = budget.try_withdraw();
            }
            let available = budget.available();
            prop_assert!(available >= 0.0);
            prop_assert!(
                available <= cap + 1e-9,
                "budget {available} exceeds its cap {cap}"
            );
        }
    }

    #[test]
    fn a_bucket_capped_below_one_token_never_grants_a_retry(
        deposits in 1usize..100,
        ratio in 0.0f64..1.0,
        cap in 0.0f64..0.999,
    ) {
        // Withdrawals are whole tokens: a bucket that cannot hold one can
        // never authorize a retry, no matter how much traffic deposits.
        let budget = RetryBudget::new(ratio, cap);
        for _ in 0..deposits {
            budget.deposit();
            prop_assert!(!budget.try_withdraw());
        }
    }
}
