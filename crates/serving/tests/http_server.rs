//! Integration tests for the HTTP serving front-end: a real server on an
//! ephemeral port, spoken to over raw `TcpStream`s — the same wire a
//! `curl` / Prometheus scraper / load generator would use.
//!
//! Covers the full robustness surface the front-end promises: the three
//! routes, malformed-JSON `400`, oversized-body `413`, queue-full `429`
//! with `Retry-After`, keep-alive pipelining, and graceful shutdown that
//! drains in-flight requests instead of dropping them.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use tt_serving::http::{HttpConfig, HttpServer, InferError, InferHandler, InferReply, VocabGuard};
use tt_serving::live::LiveEngine;
use tt_serving::scheduler::InstrumentedScheduler;
use tt_serving::{CachedCost, DpScheduler};
use tt_telemetry::{Registry, Tracer, TracerConfig};

/// A parsed wire response.
#[derive(Debug)]
struct WireResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl WireResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// Send one request with `Connection: close` and read the full response.
fn roundtrip(addr: std::net::SocketAddr, raw: &str) -> WireResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read response");
    parse_response(&buf)
}

fn parse_response(raw: &str) -> WireResponse {
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a blank line");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 =
        status_line.split(' ').nth(1).expect("status code").parse().expect("numeric status");
    let headers = lines
        .map(|l| {
            let (n, v) = l.split_once(':').expect("header line");
            (n.trim().to_string(), v.trim().to_string())
        })
        .collect();
    WireResponse { status, headers, body: body.to_string() }
}

fn get(addr: std::net::SocketAddr, path: &str) -> WireResponse {
    roundtrip(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"))
}

fn post_infer(addr: std::net::SocketAddr, body: &str) -> WireResponse {
    roundtrip(
        addr,
        &format!(
            "POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// A fast deterministic stand-in for the live engine.
struct EchoHandler;

impl InferHandler for EchoHandler {
    fn infer(&self, tokens: Vec<u32>) -> Result<InferReply, InferError> {
        Ok(InferReply {
            cls_vector: tokens.iter().map(|&t| t as f32).collect(),
            latency_ms: 0.25,
            batch_size: 1,
            padded_len: tokens.len(),
        })
    }
}

/// A handler that parks every request until released, and reports how many
/// inferences have started — lets tests hold the queue at a known depth.
/// `started` lives outside the mutex so tests can poll it while a request
/// is parked inside `recv_timeout`.
struct GatedShared {
    started: AtomicUsize,
    release: std::sync::Mutex<mpsc::Receiver<()>>,
}

impl GatedShared {
    fn new(release: mpsc::Receiver<()>) -> Self {
        GatedShared { started: AtomicUsize::new(0), release: std::sync::Mutex::new(release) }
    }

    fn started(&self) -> usize {
        self.started.load(Ordering::SeqCst)
    }
}

impl InferHandler for GatedShared {
    fn infer(&self, tokens: Vec<u32>) -> Result<InferReply, InferError> {
        self.started.fetch_add(1, Ordering::SeqCst);
        let rx = self.release.lock().unwrap();
        let _ = rx.recv_timeout(Duration::from_secs(10));
        Ok(InferReply {
            cls_vector: vec![0.0],
            latency_ms: 1.0,
            batch_size: 1,
            padded_len: tokens.len(),
        })
    }
}

fn server_with(
    handler: Arc<dyn InferHandler>,
    tweak: impl FnOnce(&mut HttpConfig),
) -> (HttpServer, Registry) {
    let registry = Registry::new();
    let mut config = HttpConfig { addr: "127.0.0.1:0".into(), ..HttpConfig::default() };
    tweak(&mut config);
    let server = HttpServer::start(config, handler, &registry).expect("server starts");
    (server, registry)
}

#[test]
fn healthz_answers_ok() {
    let (server, _registry) = server_with(Arc::new(EchoHandler), |_| {});
    let resp = get(server.addr(), "/healthz");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, "{\"status\":\"ok\"}");
    assert_eq!(resp.header("content-type"), Some("application/json"));
    server.shutdown();
}

#[test]
fn infer_roundtrips_json() {
    let (server, _registry) = server_with(Arc::new(EchoHandler), |_| {});
    let resp = post_infer(server.addr(), "{\"tokens\": [7, 8, 9]}");
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"cls_vector\":[7.0,8.0,9.0]"), "body: {}", resp.body);
    assert!(resp.body.contains("\"padded_len\":3"), "body: {}", resp.body);
    server.shutdown();
}

#[test]
fn metrics_exposition_includes_server_families() {
    let (server, registry) = server_with(Arc::new(EchoHandler), |_| {});
    // Generate traffic on every route, then scrape.
    assert_eq!(post_infer(server.addr(), "{\"tokens\": [1]}").status, 200);
    assert_eq!(get(server.addr(), "/healthz").status, 200);
    let scrape = get(server.addr(), "/metrics");
    assert_eq!(scrape.status, 200);
    assert!(scrape.header("content-type").unwrap().starts_with("text/plain"));

    for family in [
        "# TYPE http_requests_total counter",
        "# TYPE http_request_nanoseconds histogram",
        "# TYPE http_active_connections gauge",
        "# TYPE http_infer_inflight gauge",
        "# TYPE http_sheds_total counter",
        "http_requests_total{route=\"/v1/infer\",status=\"200\"} 1",
        "http_requests_total{route=\"/healthz\",status=\"200\"} 1",
    ] {
        assert!(scrape.body.contains(family), "scrape missing {family:?}\n{}", scrape.body);
    }

    // The scrape is the same exposition the in-process registry renders:
    // every family name in render_prometheus() appears over the wire too
    // (modulo counts that moved because /metrics itself is instrumented).
    let in_process = registry.render_prometheus();
    for line in in_process.lines().filter(|l| l.starts_with("# TYPE")) {
        assert!(scrape.body.contains(line) || line.contains("http_"), "missing family: {line}");
    }
    server.shutdown();
}

#[test]
fn malformed_json_is_400() {
    let (server, _registry) = server_with(Arc::new(EchoHandler), |_| {});
    let resp = post_infer(server.addr(), "{\"tokens\": [1, 2");
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("error"), "body: {}", resp.body);
    let resp = post_infer(server.addr(), "{\"tokens\": []}");
    assert_eq!(resp.status, 400, "empty token list is rejected");
    server.shutdown();
}

#[test]
fn malformed_request_line_is_400() {
    let (server, _registry) = server_with(Arc::new(EchoHandler), |_| {});
    let resp = roundtrip(server.addr(), "THIS IS NOT HTTP\r\n\r\n");
    assert_eq!(resp.status, 400);
    server.shutdown();
}

#[test]
fn oversized_body_is_413_at_header_time() {
    let (server, _registry) = server_with(Arc::new(EchoHandler), |c| c.max_body_bytes = 64);
    // Declare a huge body but never send it — the refusal must not wait.
    let resp = roundtrip(
        server.addr(),
        "POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Length: 1000000\r\n\
         Connection: close\r\n\r\n",
    );
    assert_eq!(resp.status, 413);
    server.shutdown();
}

#[test]
fn unknown_route_is_404_and_wrong_method_is_405() {
    let (server, _registry) = server_with(Arc::new(EchoHandler), |_| {});
    assert_eq!(get(server.addr(), "/nope").status, 404);
    assert_eq!(get(server.addr(), "/v1/infer").status, 405, "GET on a POST route");
    let resp = roundtrip(
        server.addr(),
        "DELETE /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(resp.status, 405);
    server.shutdown();
}

#[test]
fn keep_alive_serves_pipelined_requests_on_one_connection() {
    let (server, _registry) = server_with(Arc::new(EchoHandler), |_| {});
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // Two pipelined requests, then a third asking to close.
    let batch = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
                 GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
                 GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    stream.write_all(batch.as_bytes()).expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let ok_count = raw.matches("HTTP/1.1 200 OK").count();
    assert_eq!(ok_count, 3, "all three pipelined requests answered:\n{raw}");
    server.shutdown();
}

#[test]
fn vocab_guard_rejects_out_of_range_tokens_with_400() {
    let (server, _registry) = server_with(Arc::new(VocabGuard::new(EchoHandler, 100)), |_| {});
    let ok = post_infer(server.addr(), "{\"tokens\": [99]}");
    assert_eq!(ok.status, 200);
    let bad = post_infer(server.addr(), "{\"tokens\": [1, 100, 2]}");
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("out of range"), "body: {}", bad.body);
    server.shutdown();
}

/// A panicking backend costs the request a 503, not the worker thread —
/// the server keeps answering afterwards.
#[test]
fn panicking_handler_maps_to_503_and_server_survives() {
    struct PanicHandler;
    impl InferHandler for PanicHandler {
        fn infer(&self, _tokens: Vec<u32>) -> Result<InferReply, InferError> {
            panic!("backend blew up");
        }
    }
    let (server, _registry) = server_with(Arc::new(PanicHandler), |_| {});
    let resp = post_infer(server.addr(), "{\"tokens\": [1]}");
    assert_eq!(resp.status, 503);
    // The worker that caught the panic still serves.
    assert_eq!(get(server.addr(), "/healthz").status, 200);
    server.shutdown();
}

/// End to end with the real stack: TCP accept → parse → LiveEngine
/// (DP scheduler, real BERT numerics) → JSON response, and a `/metrics`
/// scrape that carries the engine's, scheduler's, executor's *and* the
/// server's metric families — the same exposition the in-process
/// `telemetry_report` harness renders.
#[test]
fn live_engine_behind_http_serves_and_is_scrapeable() {
    use std::sync::Arc;
    use tt_gpusim::device::DeviceKind;
    use tt_model::bert::{Bert, BertConfig};
    use tt_runtime::{RuntimeConfig, TurboRuntime};

    let registry = Registry::new();
    let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
    let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
    runtime.instrument(&registry);
    let costs =
        Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
    let scheduler = Arc::new(InstrumentedScheduler::new(Arc::new(DpScheduler), &registry));
    let engine = LiveEngine::start_instrumented(model, runtime, scheduler, costs, &registry);

    let config = HttpConfig { addr: "127.0.0.1:0".into(), ..HttpConfig::default() };
    let server =
        HttpServer::start(config, Arc::new(engine.client()), &registry).expect("server starts");
    let addr = server.addr();

    // A few concurrent clients through the full stack.
    let mut clients = Vec::new();
    for t in 0..4u32 {
        clients.push(std::thread::spawn(move || {
            let tokens: Vec<u32> = (0..(4 + t * 3)).collect();
            let body = format!(
                "{{\"tokens\": [{}]}}",
                tokens.iter().map(u32::to_string).collect::<Vec<_>>().join(", ")
            );
            post_infer(addr, &body)
        }));
    }
    for client in clients {
        let resp = client.join().expect("client thread");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"cls_vector\":["), "body: {}", resp.body);
        assert!(resp.body.contains("\"batch_size\":"), "body: {}", resp.body);
    }

    let scrape = get(addr, "/metrics");
    assert_eq!(scrape.status, 200);
    for family in [
        "live_requests_total 4",
        "# TYPE live_queue_wait_nanoseconds histogram",
        "# TYPE live_padding_waste_ratio gauge",
        "# TYPE scheduler_nanoseconds histogram",
        "# TYPE executor_op_nanoseconds histogram",
        "# TYPE http_requests_total counter",
        "http_requests_total{route=\"/v1/infer\",status=\"200\"} 4",
    ] {
        assert!(scrape.body.contains(family), "scrape missing {family:?}");
    }

    let final_metrics = server.shutdown();
    assert_eq!(engine.shutdown(), 4, "engine served exactly the HTTP-admitted requests");
    assert!(final_metrics.contains("live_requests_total 4"));
}

/// The tracing loop closed over the wire: a forced-sample `POST
/// /v1/infer?trace=1` answers with an `x-tt-trace-id` header, and `GET
/// /v1/traces/<id>` returns the request's span tree — root `http` span,
/// engine-side `queue_wait` / `schedule` (with the padding-waste attr),
/// the allocator's `alloc_plan`, and per-op spans carrying shape and
/// GFLOP/s — all parented into one well-formed tree.
#[test]
fn trace_id_round_trips_through_the_traces_route() {
    use std::sync::Arc;
    use tt_gpusim::device::DeviceKind;
    use tt_model::bert::{Bert, BertConfig};
    use tt_runtime::{RuntimeConfig, TurboRuntime};

    let registry = Registry::new();
    // Sampling effectively off: only `?trace=1` requests are traced, so
    // the same test also proves unforced requests carry no trace header.
    let tracer =
        Tracer::new(TracerConfig { enabled: true, sample_every: 1_000_000, buffer_spans: 4096 });

    let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
    let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
    let costs =
        Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
    let scheduler = Arc::new(InstrumentedScheduler::new(Arc::new(DpScheduler), &registry));
    let engine =
        LiveEngine::start_traced(model, runtime, scheduler, costs, &registry, tracer.clone());

    let config = HttpConfig { addr: "127.0.0.1:0".into(), ..HttpConfig::default() };
    let server =
        HttpServer::start_traced(config, Arc::new(engine.client()), &registry, tracer.clone())
            .expect("server starts");
    let addr = server.addr();

    // Force sampling for one request via the query flag. (This is also
    // the head-sampler's request #0, which it would keep anyway.)
    let body = "{\"tokens\": [1,2,3,4,5]}";
    let resp = roundtrip(
        addr,
        &format!(
            "POST /v1/infer?trace=1 HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(resp.status, 200);
    let trace_id = resp.header("x-tt-trace-id").expect("forced request carries a trace id");
    assert_eq!(trace_id.len(), 16, "trace id is 16 hex chars, got {trace_id:?}");

    // A later unforced request loses the 1-in-1e6 dice roll: no header.
    let untraced = post_infer(addr, "{\"tokens\": [1, 2, 3]}");
    assert_eq!(untraced.status, 200);
    assert!(untraced.header("x-tt-trace-id").is_none(), "unsampled request must not carry an id");

    // Fetch the span tree back over the same wire.
    let tree = get(addr, &format!("/v1/traces/{trace_id}"));
    assert_eq!(tree.status, 200, "body: {}", tree.body);
    let value = serde::json::parse(&tree.body).expect("trace tree parses as JSON");
    assert_eq!(value.get("trace_id").and_then(|v| v.as_str()), Some(trace_id));
    let spans = value.get("spans").and_then(|v| v.as_array()).expect("spans array").to_vec();

    let name_of =
        |v: &serde::json::Value| v.get("name").and_then(|n| n.as_str()).unwrap().to_string();
    let names: Vec<String> = spans.iter().map(&name_of).collect();
    for required in ["http", "queue_wait", "schedule", "execute", "alloc_plan", "matmul"] {
        assert!(names.iter().any(|n| n == required), "missing span {required:?} in {names:?}");
    }

    // Every non-root span's parent exists in the tree.
    let ids: Vec<&str> =
        spans.iter().map(|s| s.get("span_id").and_then(|v| v.as_str()).unwrap()).collect();
    for span in &spans {
        if let Some(parent) = span.get("parent_id").filter(|p| !p.is_null()) {
            let parent = parent.as_str().unwrap();
            assert!(ids.contains(&parent), "dangling parent {parent} in {}", tree.body);
        }
    }

    // The scheduler span reports its padding-waste decision…
    let schedule = spans.iter().find(|s| name_of(s) == "schedule").unwrap();
    let sched_attrs = schedule.get("attrs").expect("schedule attrs");
    assert!(sched_attrs.get("padding_waste").and_then(|v| v.as_f64()).is_some());
    assert!(sched_attrs.get("batch_size").and_then(|v| v.as_f64()).is_some());
    // …and the op spans report shape and achieved GFLOP/s.
    let matmul = spans.iter().find(|s| name_of(s) == "matmul").unwrap();
    let op_attrs = matmul.get("attrs").expect("matmul attrs");
    assert!(op_attrs.get("shape").and_then(|v| v.as_str()).is_some_and(|s| s.contains('x')));
    assert!(op_attrs.get("gflops").and_then(|v| v.as_f64()).is_some_and(|g| g > 0.0));

    // Unknown and malformed ids answer 404/400, not 500.
    assert_eq!(get(addr, "/v1/traces/00000000deadbeef").status, 404);
    assert_eq!(get(addr, "/v1/traces/not-hex").status, 400);

    server.shutdown();
    engine.shutdown();
}

#[test]
fn queue_full_sheds_429_with_retry_after() {
    let (release_tx, release_rx) = mpsc::channel();
    let handler = Arc::new(GatedShared::new(release_rx));

    let (server, registry) = server_with(handler.clone(), |c| {
        c.max_queue_depth = 1;
        c.workers = 4;
        c.read_timeout = Duration::from_secs(20);
    });
    let addr = server.addr();

    // Occupy the single queue slot with a parked inference.
    let first = std::thread::spawn(move || post_infer(addr, "{\"tokens\": [1]}"));
    while handler.started() < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }

    // The next request must be shed, not queued.
    let shed = post_infer(addr, "{\"tokens\": [2]}");
    assert_eq!(shed.status, 429);
    assert_eq!(shed.header("retry-after"), Some("1"));

    // Release the parked request; it completes normally.
    release_tx.send(()).unwrap();
    let first = first.join().expect("first client");
    assert_eq!(first.status, 200, "occupying request still completes");

    let snap = registry.snapshot();
    assert_eq!(
        snap.find("http_sheds_total", &[("reason", "capacity")]).unwrap().counter,
        Some(1),
        "a queue-full shed is a capacity shed"
    );
    for reason in ["predicted_slo", "deadline"] {
        assert_eq!(
            snap.find("http_sheds_total", &[("reason", reason)]).unwrap().counter,
            Some(0),
            "no {reason} sheds in a pure capacity test"
        );
    }
    assert_eq!(
        snap.find("http_requests_total", &[("route", "/v1/infer"), ("status", "429")])
            .unwrap()
            .counter,
        Some(1)
    );
    server.shutdown();
}

fn post_infer_with_deadline(
    addr: std::net::SocketAddr,
    body: &str,
    deadline_ms: &str,
) -> WireResponse {
    roundtrip(
        addr,
        &format!(
            "POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             x-tt-deadline-ms: {deadline_ms}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn deadline_header_must_be_a_positive_integer() {
    let (server, _registry) = server_with(Arc::new(EchoHandler), |_| {});
    for bad in ["0", "-5", "soon", "1.5", ""] {
        let resp = post_infer_with_deadline(server.addr(), "{\"tokens\": [1]}", bad);
        assert_eq!(resp.status, 400, "deadline {bad:?} must be rejected");
        assert!(resp.body.contains("x-tt-deadline-ms"), "body: {}", resp.body);
    }
    // A sane value is accepted and served.
    let ok = post_infer_with_deadline(server.addr(), "{\"tokens\": [1]}", "30000");
    assert_eq!(ok.status, 200);
    server.shutdown();
}

/// When the cost table prices a request above its entire deadline budget,
/// admission sheds it up front with `503` + `Retry-After` — no engine
/// cycles are spent on an answer that cannot arrive in time.
#[test]
fn predicted_slo_violation_sheds_503_with_retry_after() {
    let registry = Registry::new();
    // Every request is priced at 1000 s — no deadline can accommodate it.
    let costs = Arc::new(CachedCost::from_fn(64, 4, 8, |_, _| 1000.0));
    let config = HttpConfig { addr: "127.0.0.1:0".into(), ..HttpConfig::default() };
    let server = HttpServer::start_with_costs(
        config,
        Arc::new(EchoHandler),
        &registry,
        Tracer::disabled(),
        Some(costs),
    )
    .expect("server starts");

    let resp = post_infer(server.addr(), "{\"tokens\": [1, 2, 3]}");
    assert_eq!(resp.status, 503);
    let retry: u64 =
        resp.header("retry-after").expect("sheds carry Retry-After").parse().expect("integer");
    assert!((1..=30).contains(&retry), "Retry-After {retry} outside [1, 30]");
    assert!(resp.body.contains("deadline"), "body names the reason: {}", resp.body);

    let snap = registry.snapshot();
    assert_eq!(
        snap.find("http_sheds_total", &[("reason", "predicted_slo")]).unwrap().counter,
        Some(1)
    );
    server.shutdown();
}

/// A deadline that expires inside the engine maps to `504 Gateway
/// Timeout` with the same shed contract (`Retry-After`, taxonomy label)
/// as an admission-time shed.
#[test]
fn engine_deadline_exceeded_maps_to_504_shed() {
    struct AlwaysLate;
    impl InferHandler for AlwaysLate {
        fn infer(&self, _tokens: Vec<u32>) -> Result<InferReply, InferError> {
            Err(InferError::DeadlineExceeded("deadline expired in the engine queue".into()))
        }
    }
    let (server, registry) = server_with(Arc::new(AlwaysLate), |_| {});
    let resp = post_infer(server.addr(), "{\"tokens\": [1]}");
    assert_eq!(resp.status, 504);
    assert!(resp.header("retry-after").is_some(), "504 sheds carry Retry-After");
    assert!(resp.body.contains("error"), "body: {}", resp.body);

    let snap = registry.snapshot();
    assert_eq!(snap.find("http_sheds_total", &[("reason", "deadline")]).unwrap().counter, Some(1));
    assert_eq!(
        snap.find("http_requests_total", &[("route", "/v1/infer"), ("status", "504")])
            .unwrap()
            .counter,
        Some(1)
    );
    server.shutdown();
}

/// A request that is *served* but finishes after its deadline is not a
/// shed — it is an SLO violation, counted under `slo_violation_total`.
#[test]
fn late_success_counts_as_slo_violation_not_shed() {
    struct Sleepy;
    impl InferHandler for Sleepy {
        fn infer(&self, tokens: Vec<u32>) -> Result<InferReply, InferError> {
            std::thread::sleep(Duration::from_millis(60));
            Ok(InferReply {
                cls_vector: vec![0.0],
                latency_ms: 60.0,
                batch_size: 1,
                padded_len: tokens.len(),
            })
        }
    }
    let (server, registry) = server_with(Arc::new(Sleepy), |_| {});
    let resp = post_infer_with_deadline(server.addr(), "{\"tokens\": [1]}", "5");
    assert_eq!(resp.status, 200, "late work that completes is still served");

    let snap = registry.snapshot();
    assert_eq!(snap.find("slo_violation_total", &[]).unwrap().counter, Some(1));
    for reason in ["capacity", "predicted_slo", "deadline"] {
        assert_eq!(
            snap.find("http_sheds_total", &[("reason", reason)]).unwrap().counter,
            Some(0),
            "a late success is not a shed"
        );
    }
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_inflight_requests() {
    let (release_tx, release_rx) = mpsc::channel();
    let handler = Arc::new(GatedShared::new(release_rx));

    let (server, _registry) = server_with(handler.clone(), |c| {
        c.read_timeout = Duration::from_secs(20);
    });
    let addr = server.addr();

    let inflight = std::thread::spawn(move || post_infer(addr, "{\"tokens\": [5]}"));
    while handler.started() < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }

    // Shut down while the request is mid-inference; release it shortly
    // after shutdown starts waiting on the drain.
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        release_tx.send(()).unwrap();
    });
    let final_metrics = server.shutdown();
    releaser.join().unwrap();

    // The in-flight request was answered, not dropped.
    let resp = inflight.join().expect("in-flight client");
    assert_eq!(resp.status, 200, "graceful shutdown must drain in-flight requests");

    // The final snapshot is the flushed exposition, including the drain.
    assert!(final_metrics.contains("http_requests_total{route=\"/v1/infer\",status=\"200\"} 1"));

    // And the port is actually closed afterwards: a new connection is
    // either refused outright or never answered.
    let closed = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut s) => {
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap_or(0) == 0
        }
    };
    assert!(closed, "listener must stop accepting after shutdown");
}
