//! Integration tests for the streaming `POST /v1/generate` route: a real
//! server on an ephemeral port, spoken to over raw `TcpStream`s, with the
//! continuous-batching [`GenEngine`] (real GPT numerics, paged KV arena)
//! behind it.
//!
//! Covers the streaming contract end to end: chunked NDJSON token events
//! with a terminal `done` chunk, concurrent mixed-length streams, tokens
//! arriving incrementally (TTFT strictly before stream completion),
//! deadline expiry mid-stream surfacing as a typed terminal event (never a
//! hang), and the admission error taxonomy (400/503) decided *before* the
//! `200` status line is committed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tt_model::gpt::{Gpt, GptConfig};
use tt_serving::http::{GenerateHandler, HttpConfig, HttpServer, InferError};
use tt_serving::{CachedCost, Deadline, FinishReason, GenConfig, GenEngine, TokenEvent};
use tt_telemetry::{Registry, SpanContext, Tracer};

/// A parsed wire response.
#[derive(Debug)]
struct WireResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl WireResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

fn parse_response(raw: &str) -> WireResponse {
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a blank line");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 =
        status_line.split(' ').nth(1).expect("status code").parse().expect("numeric status");
    let headers = lines
        .map(|l| {
            let (n, v) = l.split_once(':').expect("header line");
            (n.trim().to_string(), v.trim().to_string())
        })
        .collect();
    WireResponse { status, headers, body: body.to_string() }
}

/// Undo `Transfer-Encoding: chunked` framing: `<hex>\r\n<data>\r\n`
/// repeated, terminated by a zero-length chunk.
fn decode_chunked(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    while let Some((size_line, tail)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            break;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..]; // skip the chunk's trailing \r\n
    }
    out
}

/// One decoded NDJSON generation event.
#[derive(Debug, PartialEq)]
enum Event {
    Token { index: u64, token: u64 },
    Done { finish: String, tokens: u64, error: bool },
}

fn parse_events(ndjson: &str) -> Vec<Event> {
    ndjson
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let v = serde::json::parse(line).expect("event line parses as JSON");
            let kind = v.get("event").and_then(|e| e.as_str()).expect("event field");
            let int = |k: &str| v.get(k).and_then(|x| x.as_f64()).expect(k) as u64;
            match kind {
                "token" => Event::Token { index: int("index"), token: int("token") },
                "done" => Event::Done {
                    finish: v.get("finish").and_then(|f| f.as_str()).expect("finish").to_string(),
                    tokens: int("tokens"),
                    error: match v.get("error") {
                        Some(serde::json::Value::Bool(b)) => *b,
                        other => panic!("error flag missing or non-bool: {other:?}"),
                    },
                },
                other => panic!("unknown event kind {other:?} in {line}"),
            }
        })
        .collect()
}

fn generate_request(prompt: &[u32], max_new_tokens: usize) -> String {
    let ids = prompt.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
    let body = format!("{{\"prompt\":[{ids}],\"max_new_tokens\":{max_new_tokens}}}");
    format!(
        "POST /v1/generate HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn roundtrip(addr: SocketAddr, raw: &str) -> WireResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read response");
    parse_response(&buf)
}

/// Stream a generation and return the parsed events plus the wall-clock
/// moments of the first token event and of stream completion.
fn stream_generation(
    addr: SocketAddr,
    raw: &str,
) -> (WireResponse, Vec<Event>, Duration, Duration) {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");

    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut ttft = None;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if ttft.is_none() && String::from_utf8_lossy(&buf).contains("\"event\":\"token\"") {
                    ttft = Some(start.elapsed());
                }
            }
            Err(e) => panic!("stream read failed: {e}"),
        }
    }
    let total = start.elapsed();
    let raw = String::from_utf8(buf).expect("utf-8 response");
    let resp = parse_response(&raw);
    let events = parse_events(&decode_chunked(&resp.body));
    (resp, events, ttft.unwrap_or(total), total)
}

/// Boot a real engine (tiny GPT, paged arena) behind a real server.
fn generative_server(config: GenConfig) -> (HttpServer, GenEngine, Registry) {
    let registry = Registry::new();
    let model = Gpt::new_random(&GptConfig::tiny(), 11);
    let costs = Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-6 * (len * b) as f64));
    let engine = GenEngine::start_instrumented(model, config, costs.clone(), &registry);
    let generate: Arc<dyn GenerateHandler> = Arc::new(engine.client());
    let http = HttpConfig { addr: "127.0.0.1:0".into(), ..HttpConfig::default() };
    let server = HttpServer::start_generative(
        http,
        Arc::new(NoInfer),
        Some(generate),
        &registry,
        Tracer::disabled(),
        Some(costs),
    )
    .expect("server starts");
    (server, engine, registry)
}

/// The `/v1/infer` backend is irrelevant here; refuse everything.
struct NoInfer;

impl tt_serving::InferHandler for NoInfer {
    fn infer(&self, _tokens: Vec<u32>) -> Result<tt_serving::InferReply, tt_serving::InferError> {
        Err(tt_serving::InferError::Unavailable("generation-only server".into()))
    }
}

#[test]
fn generate_streams_chunked_token_events_with_terminal_done() {
    let (server, engine, _registry) = generative_server(GenConfig::default());
    let (resp, events, _ttft, _total) =
        stream_generation(server.addr(), &generate_request(&[1, 2, 3], 8));

    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("transfer-encoding"), Some("chunked"));
    assert!(resp.header("content-type").unwrap().contains("ndjson"));

    let (done, tokens) = events.split_last().expect("at least the terminal event");
    for (i, ev) in tokens.iter().enumerate() {
        match ev {
            Event::Token { index, .. } => assert_eq!(*index, i as u64, "indices are 0-based"),
            other => panic!("non-token event before done: {other:?}"),
        }
    }
    match done {
        Event::Done { finish, tokens: n, error } => {
            assert!(!error, "healthy generation must not end in an error event");
            assert!(finish == "length" || finish == "eos", "finish: {finish}");
            assert_eq!(*n as usize, tokens.len(), "done.tokens counts the emitted tokens");
            assert!(*n >= 1, "at least one token generated");
        }
        other => panic!("terminal event is not done: {other:?}"),
    }

    server.shutdown();
    let summary = engine.shutdown();
    assert_eq!(summary.pages_leaked, 0, "all KV pages returned after the stream");
}

#[test]
fn concurrent_mixed_length_streams_all_complete_and_free_pages() {
    let (server, engine, registry) = generative_server(GenConfig::default());
    let addr = server.addr();

    let mut clients = Vec::new();
    for (prompt_len, max_new) in [(2usize, 4usize), (5, 9), (3, 16)] {
        clients.push(std::thread::spawn(move || {
            let prompt: Vec<u32> = (1..=prompt_len as u32).collect();
            stream_generation(addr, &generate_request(&prompt, max_new))
        }));
    }
    let mut total_tokens = 0u64;
    for client in clients {
        let (resp, events, ttft, total) = client.join().expect("client thread");
        assert_eq!(resp.status, 200);
        let Some(Event::Done { error: false, tokens, .. }) = events.last() else {
            panic!("stream must end in a non-error done: {events:?}");
        };
        total_tokens += tokens;
        assert!(ttft <= total, "first token cannot arrive after the stream closes");
    }

    // The engine's decode telemetry saw every streamed token, and every
    // page went back to the arena.
    let snap = registry.snapshot();
    let decoded = snap.find("decode_tokens_total", &[]).unwrap().counter.unwrap();
    assert_eq!(decoded, total_tokens, "decode_tokens_total matches the streamed tokens");
    assert_eq!(snap.find("ttft_ms", &[]).unwrap().histogram.clone().unwrap().count(), 3);
    server.shutdown();
    assert_eq!(engine.shutdown().pages_leaked, 0);
}

/// A scripted backend emitting events on a fixed cadence: proves the HTTP
/// layer flushes per token (no buffering until completion) with timing
/// that does not depend on model speed.
struct ScriptedStream {
    script: Vec<TokenEvent>,
    delay: Duration,
}

impl GenerateHandler for ScriptedStream {
    fn generate(
        &self,
        _prompt: Vec<u32>,
        _max_new_tokens: usize,
        _trace: Option<SpanContext>,
        _deadline: Option<Deadline>,
    ) -> Result<crossbeam::channel::Receiver<TokenEvent>, InferError> {
        let (tx, rx) = crossbeam::channel::unbounded();
        let script = self.script.clone();
        let delay = self.delay;
        std::thread::spawn(move || {
            for ev in script {
                std::thread::sleep(delay);
                if tx.send(ev).is_err() {
                    return; // client went away: stop producing
                }
            }
        });
        Ok(rx)
    }
}

fn scripted_server(script: Vec<TokenEvent>, delay: Duration) -> HttpServer {
    let registry = Registry::new();
    let generate: Arc<dyn GenerateHandler> = Arc::new(ScriptedStream { script, delay });
    let http = HttpConfig { addr: "127.0.0.1:0".into(), ..HttpConfig::default() };
    HttpServer::start_generative(
        http,
        Arc::new(NoInfer),
        Some(generate),
        &registry,
        Tracer::disabled(),
        None,
    )
    .expect("server starts")
}

#[test]
fn tokens_arrive_incrementally_ttft_strictly_before_stream_end() {
    let script = vec![
        TokenEvent::Token { index: 0, token: 7 },
        TokenEvent::Token { index: 1, token: 8 },
        TokenEvent::Token { index: 2, token: 9 },
        TokenEvent::Done { finish: FinishReason::Length, tokens: 3 },
    ];
    let server = scripted_server(script, Duration::from_millis(25));
    let (resp, events, ttft, total) = stream_generation(server.addr(), &generate_request(&[1], 3));

    assert_eq!(resp.status, 200);
    assert_eq!(events.len(), 4);
    // Three more 25 ms events follow the first: if the server buffered the
    // stream until completion, TTFT would equal total.
    assert!(
        total >= ttft + Duration::from_millis(50),
        "tokens must stream incrementally: ttft={ttft:?} total={total:?}"
    );
    server.shutdown();
}

#[test]
fn deadline_expiry_mid_stream_is_a_terminal_error_event_not_a_hang() {
    let script = vec![
        TokenEvent::Token { index: 0, token: 7 },
        TokenEvent::Token { index: 1, token: 8 },
        TokenEvent::Done { finish: FinishReason::Deadline, tokens: 2 },
    ];
    let server = scripted_server(script, Duration::from_millis(5));
    let (resp, events, _ttft, _total) =
        stream_generation(server.addr(), &generate_request(&[1], 64));

    // The status line was already committed (200 + chunked) when the
    // deadline hit: the failure surfaces in-band as a typed terminal
    // event, and the chunked framing still terminates cleanly.
    assert_eq!(resp.status, 200);
    assert_eq!(
        events.last(),
        Some(&Event::Done { finish: "deadline".into(), tokens: 2, error: true }),
        "events: {events:?}"
    );
    server.shutdown();
}

#[test]
fn admission_errors_are_plain_http_statuses_not_streams() {
    let (server, engine, _registry) = generative_server(GenConfig::default());
    let addr = server.addr();

    // Malformed JSON and empty prompts are client errors.
    let raw = "POST /v1/generate HTTP/1.1\r\nHost: t\r\nContent-Length: 12\r\n\
               Connection: close\r\n\r\n{\"prompt\": [";
    assert_eq!(roundtrip(addr, raw).status, 400);
    assert_eq!(roundtrip(addr, &generate_request(&[], 4)).status, 400);

    // A prompt that cannot fit the context window is rejected by the
    // engine *before* any token: the peeked terminal event maps to a
    // plain 400, never a 200 stream that instantly errors.
    let oversized: Vec<u32> = (0..40).collect(); // tiny GPT max_position = 32
    let resp = roundtrip(addr, &generate_request(&oversized, 4));
    assert_eq!(resp.status, 400);
    assert!(resp.header("transfer-encoding").is_none(), "rejections are not chunked");

    // An out-of-vocabulary id is the same typed rejection (regression:
    // it used to assert inside the embedding and kill the engine thread).
    assert_eq!(roundtrip(addr, &generate_request(&[1, 9999, 2], 4)).status, 400);
    let resp = roundtrip(addr, &generate_request(&[1, 2], 2));
    assert_eq!(resp.status, 200, "engine survives the bad prompt");

    // Wrong method on the route.
    assert_eq!(
        roundtrip(addr, "GET /v1/generate HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").status,
        405
    );

    server.shutdown();
    assert_eq!(engine.shutdown().pages_leaked, 0);
}

#[test]
fn server_without_generative_backend_answers_503() {
    let registry = Registry::new();
    let http = HttpConfig { addr: "127.0.0.1:0".into(), ..HttpConfig::default() };
    let server = HttpServer::start(http, Arc::new(NoInfer), &registry).expect("server starts");
    let resp = roundtrip(server.addr(), &generate_request(&[1, 2], 4));
    assert_eq!(resp.status, 503);
    assert!(resp.body.contains("no generative backend"), "body: {}", resp.body);
    server.shutdown();
}
