//! Property test of the live engine's energy attribution contract:
//! per-request microjoule shares must sum **exactly** (integer-exact, no
//! float drift) to the runtime's energy-meter counter delta, for any mix
//! of concurrent variable-length request streams.
//!
//! The engine splits each executed batch's metered total into equal
//! integer shares with the remainder spread over the first rows; because
//! the runtime adds the *same* `u64` total to the meter that it returns
//! in `EncoderRun.energy_uj`, the reconciliation is a hard equality — the
//! property pins it across arbitrary batch formations.

use std::sync::Arc;

use proptest::prelude::*;

use tt_gpusim::device::DeviceKind;
use tt_model::bert::{Bert, BertConfig};
use tt_runtime::{RuntimeConfig, TurboRuntime};
use tt_serving::scheduler::DpScheduler;
use tt_serving::{live::LiveEngine, CachedCost};
use tt_telemetry::{EnergyMeter, EnergyPhase};

proptest! {
    // Each case spins up a real engine with real numerics; keep the case
    // count small — the property is about batch-split arithmetic, and a
    // handful of random stream mixes covers every remainder pattern.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn concurrent_stream_energy_shares_sum_to_the_meter_delta(
        lens in prop::collection::vec(1usize..48, 1..12),
    ) {
        let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
        let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
        let meter = Arc::new(EnergyMeter::new());
        runtime.instrument_energy(meter.clone());
        let costs =
            Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
        let eng = LiveEngine::start(model, runtime, Arc::new(DpScheduler), costs);

        let handles: Vec<_> = lens
            .iter()
            .enumerate()
            .map(|(t, &len)| {
                let client = eng.client();
                std::thread::spawn(move || {
                    let tokens: Vec<u32> = (0..len as u32).map(|i| (i + t as u32) % 90).collect();
                    client.infer(tokens).energy_uj
                })
            })
            .collect();
        let shares: Vec<u64> = handles.into_iter().map(|h| h.join().expect("client")).collect();
        prop_assert_eq!(eng.shutdown(), lens.len());

        prop_assert!(shares.iter().all(|&e| e > 0), "every request carries modeled joules");
        prop_assert_eq!(
            shares.iter().sum::<u64>(),
            meter.phase_uj(EnergyPhase::Prefill),
            "attribution must reconcile exactly with the counter delta"
        );
    }
}
