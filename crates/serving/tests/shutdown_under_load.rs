//! Shutdown under load: a live engine draining a queue that holds a mix
//! of expired and still-live requests must answer *everyone* — live jobs
//! with results, expired jobs with the typed deadline error (the HTTP
//! layer's `504`), never a silent drop — and the final metrics flush must
//! account for the split exactly.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tt_gpusim::device::DeviceKind;
use tt_model::bert::{Bert, BertConfig};
use tt_runtime::{RuntimeConfig, TurboRuntime};
use tt_serving::http::{HttpConfig, HttpServer};
use tt_serving::live::{LiveEngine, LiveError};
use tt_serving::request::Request;
use tt_serving::scheduler::{BatchScheduler, Batching, DpScheduler};
use tt_serving::{CachedCost, Deadline};
use tt_telemetry::Registry;

/// Algorithm 3 with a built-in stall: the first scheduling pass sleeps, so
/// jobs submitted behind it pile into one queue and drain together.
struct SlowScheduler(Duration);

impl BatchScheduler for SlowScheduler {
    fn schedule(&self, queue: &[Request], costs: &CachedCost) -> Batching {
        std::thread::sleep(self.0);
        DpScheduler.schedule(queue, costs)
    }
    fn name(&self) -> &'static str {
        "slow"
    }
}

#[test]
fn draining_a_mixed_queue_answers_expired_jobs_with_the_typed_deadline_error() {
    const EXPIRED: usize = 4;
    const LIVE: usize = 4;

    let registry = Registry::new();
    let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
    let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
    let costs =
        Arc::new(CachedCost::from_fn(64, 16, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
    let engine = LiveEngine::start_instrumented(
        model,
        runtime,
        // The stall keeps the engine busy while the mixed queue forms, so
        // expired and live jobs are drained in the same pass.
        Arc::new(SlowScheduler(Duration::from_millis(50))),
        costs,
        &registry,
    );

    let mut handles = Vec::new();
    for i in 0..(EXPIRED + LIVE) {
        let client = engine.client();
        // Half the queue is dead on arrival, half has all the time in the
        // world — exactly the state a server being shut down under load
        // has to drain.
        let deadline = if i < EXPIRED {
            Deadline::at(Instant::now())
        } else {
            Deadline::within(Duration::from_secs(30))
        };
        handles.push(std::thread::spawn(move || {
            client.infer_request(vec![5, 17, 42, 8], None, Some(deadline))
        }));
    }

    let mut ok = 0;
    let mut deadline_errors = 0;
    for handle in handles {
        match handle.join().expect("client thread") {
            Ok(response) => {
                assert!(!response.cls_vector.is_empty(), "served jobs carry a real result");
                ok += 1;
            }
            Err(LiveError::DeadlineExceeded) => deadline_errors += 1,
            Err(other) => panic!("no job may be dropped or failed, got {other:?}"),
        }
    }
    assert_eq!(ok, LIVE, "every live job is served through the drain");
    assert_eq!(deadline_errors, EXPIRED, "every expired job gets the typed 504, not a drop");

    // Graceful shutdown: the engine exits only after the queue is empty.
    let served = engine.shutdown();
    assert_eq!(served, LIVE, "served count excludes deadline-shed jobs");

    // The final metrics flush balances: served + deadline-shed accounts
    // for every submission.
    let snap = registry.snapshot();
    let served_metric =
        snap.find("live_requests_total", &[]).and_then(|m| m.counter).expect("requests counter");
    let shed_pre_schedule = snap
        .find("deadline_exceeded_total", &[("stage", "pre_schedule")])
        .and_then(|m| m.counter)
        .expect("pre_schedule counter");
    let shed_pre_execute = snap
        .find("deadline_exceeded_total", &[("stage", "pre_execute")])
        .and_then(|m| m.counter)
        .expect("pre_execute counter");
    assert_eq!(served_metric, LIVE as u64);
    assert_eq!(
        shed_pre_schedule + shed_pre_execute,
        EXPIRED as u64,
        "every expired job is visible in deadline_exceeded_total"
    );
    assert_eq!(
        served_metric + shed_pre_schedule + shed_pre_execute,
        (EXPIRED + LIVE) as u64,
        "the flush accounts for every submitted job"
    );
}

/// The same contract at the HTTP boundary: shut the server down while a
/// mix of tight- and roomy-deadline requests is in flight; every client
/// gets a well-formed response, and the flushed final scrape's per-status
/// counts sum to every request sent.
#[test]
fn http_shutdown_under_mixed_deadline_load_accounts_for_every_request() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    const TIGHT: usize = 6;
    const ROOMY: usize = 6;

    let registry = Registry::new();
    let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
    let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
    let costs =
        Arc::new(CachedCost::from_fn(64, 16, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
    let engine = LiveEngine::start_instrumented(
        model,
        runtime,
        Arc::new(SlowScheduler(Duration::from_millis(30))),
        costs,
        &registry,
    );
    let config = HttpConfig { addr: "127.0.0.1:0".into(), workers: 4, ..HttpConfig::default() };
    let server =
        HttpServer::start(config, Arc::new(engine.client()), &registry).expect("server starts");
    let addr = server.addr();

    let post = move |deadline_ms: u64| {
        let body = "{\"tokens\": [5, 17, 42, 8]}";
        let raw = format!(
            "POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             x-tt-deadline-ms: {deadline_ms}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .expect("well-formed status line")
    };

    let mut handles = Vec::new();
    for i in 0..(TIGHT + ROOMY) {
        // 1 ms budgets cannot survive the 30 ms scheduler stall: they are
        // shed at admission (503/504, once the shared queue-wait histogram
        // predicts the wait) or at the engine's deadline boundaries (504).
        // 30 s budgets ride out the stall and serve (200).
        let tight = i < TIGHT;
        let deadline_ms = if tight { 1 } else { 30_000 };
        handles.push(std::thread::spawn(move || (tight, post(deadline_ms))));
    }
    let outcomes: Vec<(bool, u16)> =
        handles.into_iter().map(|h| h.join().expect("client")).collect();

    // Shutdown drains whatever is still in flight, then flushes metrics.
    let final_metrics = server.shutdown();
    engine.shutdown();

    let count_of = |status: u16| {
        let needle = format!("http_requests_total{{route=\"/v1/infer\",status=\"{status}\"}} ");
        final_metrics
            .lines()
            .find_map(|l| l.strip_prefix(&needle))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0)
    };
    for &(tight, status) in &outcomes {
        if tight {
            assert!(
                status == 503 || status == 504,
                "a 1 ms budget must be shed (503/504), got {status}"
            );
        } else {
            assert_eq!(status, 200, "a 30 s budget must be served through the drain");
        }
    }
    let shed: u64 = outcomes.iter().filter(|&&(tight, _)| tight).count() as u64;
    assert_eq!(count_of(200), ROOMY as u64, "final scrape matches client-side 200s");
    assert_eq!(count_of(503) + count_of(504), shed, "final scrape accounts for every shed request");
}
