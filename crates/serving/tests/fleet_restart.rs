//! Restart-under-load integration tests: a replica that panics mid-batch
//! must fail its in-flight work with typed errors (never a hang), come
//! back under a fresh generation stamp, and serve the next wave — with
//! the paged KV arena leak-checked across every bounce. At the fleet
//! level, the router must route around the bounced replica and re-admit
//! it through the half-open probe once it recovers.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tt_chaos::ChaosConfig;
use tt_gpusim::device::DeviceKind;
use tt_model::bert::{Bert, BertConfig};
use tt_model::gpt::{Gpt, GptConfig};
use tt_runtime::decode::DecodeConfig;
use tt_runtime::{RuntimeConfig, TurboRuntime};
use tt_serving::generate::GenEngine;
use tt_serving::live::{spawn_core, LiveError};
use tt_serving::scheduler::DpScheduler;
use tt_serving::{
    CachedCost, Fleet, FleetConfig, GenClient, GenConfig, HealthConfig, HealthState,
    ReplicaFactory, ReplicaParts, RetryConfig, SupervisedReplica, SupervisorConfig,
};
use tt_telemetry::Tracer;

/// Chaos state is process-global; serialize the tests that arm it.
static CHAOS: Mutex<()> = Mutex::new(());

fn chaos_locked() -> std::sync::MutexGuard<'static, ()> {
    CHAOS.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn quick_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        liveness_deadline: Duration::from_millis(150),
        poll_interval: Duration::from_millis(10),
        restart_backoff: Duration::from_millis(10),
    }
}

/// A replica factory running both engines: the supervised BERT live core
/// and a GPT generation engine over a paged KV arena — the arena is what
/// the bounce-time leak check audits.
fn full_factory() -> ReplicaFactory {
    let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
    let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
    let costs =
        Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
    Arc::new(move |id, _generation| {
        let gen_config = GenConfig {
            kv: DecodeConfig { page_slots: 4, num_pages: 32 },
            max_active: 8,
            max_new_tokens: 32,
            eos_token: None,
        };
        let gpt = Gpt::new_random(&GptConfig::tiny(), 2024);
        ReplicaParts {
            live: spawn_core(
                model.clone(),
                runtime.clone(),
                Arc::new(DpScheduler),
                costs.clone(),
                None,
                Tracer::disabled(),
                id,
            ),
            generative: Some(GenEngine::start(gpt, gen_config, costs.clone()).into_parts()),
        }
    })
}

/// Infer-only factory for the fleet-level test.
fn infer_factory() -> ReplicaFactory {
    let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
    let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
    let costs =
        Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
    Arc::new(move |id, _generation| ReplicaParts {
        live: spawn_core(
            model.clone(),
            runtime.clone(),
            Arc::new(DpScheduler),
            costs.clone(),
            None,
            Tracer::disabled(),
            id,
        ),
        generative: None,
    })
}

/// Serve one request, retrying until the replica is back up (bounded).
fn serve_until_ok(replica: &SupervisedReplica, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        match replica.infer_request(vec![5, 6, 7], None, None) {
            Ok(resp) => {
                assert_eq!(resp.batch_size, 1);
                return;
            }
            Err(_) => {
                assert!(Instant::now() < deadline, "replica never served again");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn wait_for_restarts(replica: &SupervisedReplica, at_least: u64, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while replica.restarts() < at_least {
        assert!(
            Instant::now() < deadline,
            "watchdog never reached {at_least} restarts (at {})",
            replica.restarts()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn replica_panic_mid_batch_fails_typed_and_the_restart_serves_the_next_wave() {
    let _guard = chaos_locked();
    tt_chaos::disarm();
    let replica = Arc::new(SupervisedReplica::start(0, full_factory(), quick_supervisor(), None));

    // Wave 1, healthy: inference serves and a generation stream completes
    // — pages get allocated and freed, so the bounce below audits a KV
    // arena that has actually been used.
    for i in 0..6 {
        let resp = replica.infer_request(vec![5, 6, 7 + i], None, None).expect("wave 1 serves");
        assert_eq!(resp.batch_size, 1);
    }
    {
        let client = replica.gen_client().expect("generative engine present");
        let rx = client.generate_request(vec![1, 2, 3], 8, None, None).expect("stream starts");
        drop(client); // never keep a clone: a bounce joins the gen loop, which waits for all clients
        let (tokens, _finish) = GenClient::collect(&rx);
        assert_eq!(tokens.len(), 8, "healthy generation completes");
    }

    // Kill it mid-load: every loop iteration panics while armed, so the
    // engine dies with requests queued behind it. The contract: every
    // in-flight request returns *typed* within the reply-poll window —
    // the recv_timeout below failing would mean a client hung forever.
    tt_chaos::install(ChaosConfig { replica_panic: 1.0, seed: 3, ..ChaosConfig::default() });
    let (tx, rx) = mpsc::channel();
    let clients = 6;
    for i in 0..clients {
        let replica = replica.clone();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let outcome = replica.infer_request(vec![5, 6, 7 + i], None, None);
            let _ = tx.send(outcome);
        });
    }
    for _ in 0..clients {
        let outcome = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("an in-flight request hung across the bounce instead of failing typed");
        if let Err(e) = outcome {
            assert_eq!(e, LiveError::Unavailable, "failures must carry the replica-dead type");
        }
    }
    wait_for_restarts(&replica, 1, Duration::from_secs(5));
    tt_chaos::disarm();

    // Next wave: the respawned incarnation serves, under a bumped stamp.
    serve_until_ok(&replica, Duration::from_secs(10));
    assert!(replica.generation() >= 1, "a bounce must bump the generation stamp");

    // Round 2 proves the watchdog survived round 1's bounce-time KV leak
    // check (that assert runs on the watchdog thread: a leak would have
    // killed it, and restarts would never grow again).
    let before = replica.restarts();
    tt_chaos::install(ChaosConfig { replica_panic: 1.0, seed: 5, ..ChaosConfig::default() });
    wait_for_restarts(&replica, before + 1, Duration::from_secs(5));
    tt_chaos::disarm();
    serve_until_ok(&replica, Duration::from_secs(10));

    let replica = Arc::into_inner(replica).expect("all client threads joined");
    // Shutdown runs the final KV leak audit (pages_leaked == 0 asserted
    // inside) on top of the per-bounce audits above.
    let report = replica.shutdown();
    assert!(report.restarts >= 2, "both chaos rounds bounced the replica");
    assert_eq!(report.generation, report.restarts, "one stamp per bounce");
}

#[test]
fn the_fleet_routes_around_a_bounced_replica_and_readmits_it() {
    let _guard = chaos_locked();
    tt_chaos::disarm();
    let costs =
        Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
    let config = FleetConfig {
        replicas: 2,
        supervisor: quick_supervisor(),
        health: HealthConfig {
            min_samples: 2,
            eject_cooldown: Duration::from_millis(50),
            stale_heartbeat: Duration::from_millis(150),
            ..HealthConfig::default()
        },
        retry: RetryConfig::default(),
        hedge: None,
    };
    let fleet = Fleet::start(infer_factory(), config, costs, None);

    for i in 0..8 {
        fleet.infer_request(vec![5, 6, 7 + i], None, None).expect("healthy fleet serves");
    }

    // Kill replica 0 only. With a healthy sibling and the retry layer on
    // top, the fleet keeps answering — dispatches that do land on the
    // dying replica come back typed and retried onto replica 1.
    tt_chaos::install(ChaosConfig {
        replica_panic: 1.0,
        replica_target: 0,
        seed: 9,
        ..ChaosConfig::default()
    });
    let outage_deadline = Instant::now() + Duration::from_secs(10);
    let mut served_during_outage = 0;
    while fleet.restarts()[0] < 1 {
        assert!(Instant::now() < outage_deadline, "watchdog never bounced replica 0");
        if fleet.infer_request(vec![5, 6, 7], None, None).is_ok() {
            served_during_outage += 1;
        }
    }
    assert!(served_during_outage > 0, "a 1-of-2 outage must not zero the fleet");
    tt_chaos::disarm();
    assert_eq!(fleet.restarts()[1], 0, "chaos blast radius leaked to the healthy replica");

    // Re-admission: drive traffic until the breaker walks replica 0 back
    // through its half-open probe to healthy.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let _ = fleet.infer_request(vec![5, 6, 7], None, None);
        if fleet.states().iter().all(|s| *s == HealthState::Healthy) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never returned to full health: {:?}",
            fleet.states()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    for i in 0..8 {
        fleet.infer_request(vec![5, 6, 7 + i], None, None).expect("recovered fleet serves");
    }
    let reports = fleet.shutdown();
    assert_eq!(reports.len(), 2);
    assert!(reports[0].restarts >= 1);
    assert_eq!(reports[1].restarts, 0);
}
