//! Fault-injection integration tests: arm `tt-chaos` against the *real*
//! engine and HTTP front-end and verify the blast radius of each fault is
//! one request (or one batch), never a thread or the process.
//!
//! Chaos state is process-global, so this file is its own test binary and
//! every test serializes on [`CHAOS_LOCK`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tt_chaos::ChaosConfig;
use tt_gpusim::device::DeviceKind;
use tt_model::bert::{Bert, BertConfig};
use tt_runtime::{RuntimeConfig, TurboRuntime};
use tt_serving::http::{HttpConfig, HttpServer};
use tt_serving::live::{LiveEngine, LiveError};
use tt_serving::{CachedCost, DpScheduler};
use tt_telemetry::Registry;

/// Serializes tests: `tt-chaos` configuration is a process-global.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn engine() -> LiveEngine {
    let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
    let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
    let costs =
        Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
    LiveEngine::start(model, runtime, Arc::new(DpScheduler), costs)
}

/// An injected executor panic costs the batch its answer (typed
/// `Unavailable`, never a hang) — and the engine thread survives to serve
/// the next request once the fault clears.
#[test]
fn executor_panic_drops_the_batch_but_not_the_engine() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let eng = engine();

    tt_chaos::install(ChaosConfig { executor_op_panic: 1.0, seed: 7, ..ChaosConfig::default() });
    let poisoned = eng.client().infer_request(vec![5, 17, 42, 8], None, None);
    assert_eq!(poisoned.unwrap_err(), LiveError::Unavailable, "the batch dies, typed");
    assert!(tt_chaos::total_fired() >= 1, "the fault must actually have fired");

    tt_chaos::disarm();
    let healthy = eng
        .client()
        .infer_request(vec![5, 17, 42, 8], None, None)
        .expect("engine survived the panic");
    assert!(!healthy.cls_vector.is_empty());
    assert_eq!(eng.shutdown(), 1, "only the healthy request counts as served");
}

/// Same contract for an allocator plan failure — the other panic-class
/// fault, injected one layer deeper.
#[test]
fn allocator_failure_drops_the_batch_but_not_the_engine() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let eng = engine();

    tt_chaos::install(ChaosConfig { alloc_plan_fail: 1.0, seed: 7, ..ChaosConfig::default() });
    assert_eq!(
        eng.client().infer_request(vec![1, 2, 3], None, None).unwrap_err(),
        LiveError::Unavailable
    );

    tt_chaos::disarm();
    eng.client()
        .infer_request(vec![1, 2, 3], None, None)
        .expect("engine survived the allocator failure");
    assert_eq!(eng.shutdown(), 1);
}

/// An op slowdown delays the answer but corrupts nothing: the request
/// still serves, measurably slower than the injected delay.
#[test]
fn op_slowdown_delays_but_serves() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let eng = engine();

    tt_chaos::install(ChaosConfig {
        op_slowdown: 1.0,
        op_slowdown_ms: 5,
        seed: 7,
        ..ChaosConfig::default()
    });
    let start = Instant::now();
    let response =
        eng.client().infer_request(vec![5, 17, 42, 8], None, None).expect("slow but served");
    let elapsed = start.elapsed();
    tt_chaos::disarm();

    assert!(!response.cls_vector.is_empty());
    // Every op in the graph slept 5 ms; even one op proves the delay
    // threaded through without breaking numerics.
    assert!(elapsed >= Duration::from_millis(5), "injected delay must be observable");
    assert_eq!(eng.shutdown(), 1);
}

/// The `kv_alloc_fail` point starves the paged KV arena: the victim
/// stream ends in a typed `out_of_pages` terminal event (never a hang),
/// its pages are reclaimed the same iteration, and the generation engine
/// keeps serving once the fault clears.
#[test]
fn kv_alloc_failure_retires_the_stream_and_reclaims_pages() {
    use tt_model::gpt::{Gpt, GptConfig};
    use tt_serving::{FinishReason, GenClient, GenConfig, GenEngine, TokenEvent};

    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let model = Gpt::new_random(&GptConfig::tiny(), 3);
    let costs = Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-6 * (len * b) as f64));
    let eng = GenEngine::start(model, GenConfig::default(), costs);

    tt_chaos::install(ChaosConfig { kv_alloc_fail: 1.0, seed: 7, ..ChaosConfig::default() });
    let rx = eng.client().generate(vec![1, 2, 3], 8).expect("submission succeeds");
    let (tokens, finish) = GenClient::collect(&rx);
    assert_eq!(finish, Some(FinishReason::OutOfPages), "the starved stream dies typed");
    assert!(tokens.is_empty(), "no token can be produced without a page");
    assert!(tt_chaos::total_fired() >= 1, "the fault must actually have fired");

    // Fault cleared: the same engine serves the next request completely.
    tt_chaos::disarm();
    let rx = eng.client().generate(vec![1, 2, 3], 8).expect("submission succeeds");
    let (tokens, finish) = GenClient::collect(&rx);
    assert!(matches!(finish, Some(FinishReason::Length | FinishReason::Eos)));
    assert!(!tokens.is_empty(), "healthy generation produces tokens");
    let done = rx.try_recv();
    assert!(done.is_err() || matches!(done, Ok(TokenEvent::Done { .. })), "stream terminated");

    let summary = eng.shutdown();
    assert_eq!(summary.pages_leaked, 0, "starved and healthy pages all returned");
}

/// HTTP-layer faults: a stalled worker delays its response but the server
/// answers everything; a dropped connection truncates one response while
/// the listener keeps accepting.
#[test]
fn http_worker_stall_and_connection_drop_are_survivable() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let eng = engine();
    let registry = Registry::new();
    let config = HttpConfig { addr: "127.0.0.1:0".into(), workers: 2, ..HttpConfig::default() };
    let server =
        HttpServer::start(config, Arc::new(eng.client()), &registry).expect("server starts");
    let addr = server.addr();

    let exchange = || {
        let body = "{\"tokens\": [5, 17, 42, 8]}";
        let raw = format!(
            "POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("write");
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        response
    };

    // Worker stall: the response arrives anyway, after the injected sleep.
    tt_chaos::install(ChaosConfig {
        worker_stall: 1.0,
        worker_stall_ms: 20,
        seed: 7,
        ..ChaosConfig::default()
    });
    let start = Instant::now();
    let stalled = exchange();
    assert!(stalled.contains("cls_vector"), "stalled worker still serves: {stalled}");
    assert!(start.elapsed() >= Duration::from_millis(20), "the stall must be observable");

    // Connection stall: the read is deferred (timer-wheel parked under
    // the reactor, a worker sleep under the threaded driver) but the
    // request still serves, completely, after the injected delay.
    tt_chaos::install(ChaosConfig {
        conn_stall: 1.0,
        conn_stall_ms: 60,
        seed: 7,
        ..ChaosConfig::default()
    });
    let start = Instant::now();
    let parked = exchange();
    assert!(parked.contains("cls_vector"), "stalled connection still serves: {parked}");
    assert!(start.elapsed() >= Duration::from_millis(60), "the stall must be observable");

    // Connection drop: this response is truncated mid-head…
    tt_chaos::install(ChaosConfig { conn_drop: 1.0, seed: 7, ..ChaosConfig::default() });
    let dropped = exchange();
    assert!(
        !dropped.contains("\r\n\r\n"),
        "a dropped connection must not deliver a complete response: {dropped:?}"
    );

    // …but the server survives and the next exchange is whole.
    tt_chaos::disarm();
    let healthy = exchange();
    assert!(healthy.starts_with("HTTP/1.1 200"), "server survived the drop: {healthy}");
    assert!(healthy.contains("cls_vector"));

    server.shutdown();
    eng.shutdown();
}
