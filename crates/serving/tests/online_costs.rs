//! Regression guard for the online cost-table feedback loop.
//!
//! The live engine feeds measured batch times back into [`CachedCost`]
//! through an EWMA (`with_online_updates`). That loop must only ever help:
//! once the workload has been profiled, Algorithm 3 steered by the updated
//! table must never pick a batching that is *worse under the true machine*
//! than the batching the stale static table would have picked.
//!
//! Two regimes, mirroring how online profiling actually behaves:
//!
//! - **Cost-increasing drift** (overhead regression, wide-batch
//!   degradation): unvisited cells keep their stale — now *under*estimated
//!   — costs, so the DP is optimistic about unexplored splits, wanders
//!   into them, and the engine's own execution observes them. The closed
//!   schedule → execute → observe loop alone converges to the true
//!   optimum; the test runs exactly that loop.
//! - **Cost-decreasing drift** (the machine got faster): unvisited cells
//!   are *over*estimated, so the closed loop never explores them — the
//!   classic pessimistic-initialization trap. The guarantee is therefore
//!   scoped to the *profiled* workload: once every cell the DP can address
//!   has one observation, the trained table must tie or beat the static
//!   one. The test profiles all addressable cells, then asserts.

use tt_serving::scheduler::{batching_cost, BatchScheduler};
use tt_serving::{CachedCost, DpScheduler, Request};

const MAX_LEN: usize = 64;
const MAX_BATCH: usize = 8;
const BUCKET: usize = 8;

/// The stale profile both tables start from.
fn stale(len: usize, batch: usize) -> f64 {
    1.0e-3 + 1.0e-5 * (len * batch) as f64
}

fn requests(lens: &[usize]) -> Vec<Request> {
    lens.iter().enumerate().map(|(id, &len)| Request::new(id, len, 0.0)).collect()
}

fn workload() -> Vec<Vec<Request>> {
    vec![
        requests(&[4, 6, 8, 12, 16, 24, 32, 40]),
        requests(&[8, 8, 8, 8, 48, 56, 64]),
        requests(&[3, 5, 7, 9, 11, 13, 15, 17, 19, 21]),
        requests(&[64, 64, 64, 2, 2, 2]),
        requests(&[16; 12]),
    ]
}

/// Run the production loop: schedule with the current table, "execute"
/// each chosen batch at its true cost, observe that cost back, repeat.
/// Every cell of every *chosen* schedule gets observed each round, so the
/// loop converges once the schedule stops moving; 80 rounds far exceeds
/// the number of addressable cells.
fn train_closed_loop(table: &CachedCost, truth: &CachedCost, workload: &[Vec<Request>]) {
    for _ in 0..80 {
        for queue in workload {
            for batch in DpScheduler.schedule(queue, table) {
                let padded = batch.iter().map(|&i| queue[i].len).max().unwrap();
                table.observe(padded, batch.len(), truth.batch_cost(padded, batch.len()));
            }
        }
    }
}

/// Observe every cell Algorithm 3 can address on this workload: each
/// contiguous window of the sorted queue is a candidate batch, and its
/// cell is `(padded-to-max length, window size)`.
fn profile_workload(table: &CachedCost, truth: &CachedCost, workload: &[Vec<Request>]) {
    for queue in workload {
        let mut lens: Vec<usize> = queue.iter().map(|r| r.len).collect();
        lens.sort_unstable();
        for (hi, &padded) in lens.iter().enumerate() {
            for lo in hi.saturating_sub(MAX_BATCH - 1)..=hi {
                let count = hi - lo + 1;
                table.observe(padded, count, truth.batch_cost(padded, count));
            }
        }
    }
}

/// Core property: on every queue, the trained online table's schedule
/// costs no more *under the true machine* than the stale static table's.
fn assert_online_never_worse(
    truth_fn: impl FnMut(usize, usize) -> f64,
    full_profile: bool,
    drift: &str,
) {
    let truth = CachedCost::from_fn(MAX_LEN, MAX_BATCH, BUCKET, truth_fn);
    let static_table = CachedCost::from_fn(MAX_LEN, MAX_BATCH, BUCKET, stale);
    let online = CachedCost::from_fn(MAX_LEN, MAX_BATCH, BUCKET, stale).with_online_updates(0.25);
    let workload = workload();

    train_closed_loop(&online, &truth, &workload);
    if full_profile {
        profile_workload(&online, &truth, &workload);
    }

    for (i, queue) in workload.iter().enumerate() {
        let with_online = DpScheduler.schedule(queue, &online);
        let with_static = DpScheduler.schedule(queue, &static_table);
        let online_true_cost = batching_cost(queue, &with_online, &truth);
        let static_true_cost = batching_cost(queue, &with_static, &truth);
        assert!(
            online_true_cost <= static_true_cost * (1.0 + 1e-9),
            "drift {drift:?}, queue {i}: online-trained table picked a worse batching \
             ({online_true_cost:.6}s true) than the stale static table ({static_true_cost:.6}s)"
        );
    }
}

/// Per-batch overhead grew 10x (e.g. a kernel-launch latency regression):
/// batching more aggressively is now much better than the stale table
/// believes. The closed loop alone must find the cheaper splits.
#[test]
fn closed_loop_wins_when_fixed_overhead_grows() {
    assert_online_never_worse(|len, b| 1.0e-2 + 1.0e-5 * (len * b) as f64, false, "overhead x10");
}

/// Per-token cost grew superlinearly in batch size (cache thrash at wide
/// batches): splitting finer is now better; the closed loop must not stay
/// over-batched.
#[test]
fn closed_loop_wins_when_wide_batches_degrade() {
    assert_online_never_worse(
        |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64 * (1.0 + 0.3 * b as f64),
        false,
        "superlinear batch penalty",
    );
}

/// The machine matches the static profile exactly (no drift): feedback
/// converges to the same cells and must not destabilize the schedule.
#[test]
fn closed_loop_is_a_no_op_without_drift() {
    assert_online_never_worse(stale, false, "none");
}

/// The machine got uniformly faster. The closed loop alone cannot be
/// trusted here (over-estimated unexplored cells are never visited), but
/// once the workload is profiled the trained table must tie the static
/// one — schedules are scale-invariant under a uniform factor.
#[test]
fn profiled_table_ties_under_uniform_speedup() {
    assert_online_never_worse(|len, b| 0.5 * stale(len, b), true, "uniform 2x speedup");
}

/// Faster machine *and* shifted shape (overhead shrank, per-token cost
/// grew): the fully profiled table must track the new optimum.
#[test]
fn profiled_table_wins_under_mixed_drift() {
    assert_online_never_worse(
        |len, b| 2.0e-4 + 2.5e-5 * (len * b) as f64,
        true,
        "cheap launch, dear tokens",
    );
}
