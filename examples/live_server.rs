//! The serving pipeline with *real threads*: clients submit through
//! channels, the engine batches with the DP scheduler and runs actual BERT
//! numerics — paper Figure 2 running live on your CPU.
//!
//! Run with: `cargo run --release --example live_server`

use std::sync::Arc;

use turbotransformers::gpusim::device::DeviceKind;
use turbotransformers::model::bert::{Bert, BertConfig};
use turbotransformers::runtime::{RuntimeConfig, TurboRuntime};
use turbotransformers::serving::live::LiveEngine;
use turbotransformers::serving::scheduler::DpScheduler;
use turbotransformers::serving::CachedCost;

fn main() {
    // A small BERT so the demo is instant; the engine code is model-size
    // agnostic.
    let config = BertConfig::tiny();
    let model = Arc::new(Bert::new_random(&config, 7));
    let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
    let costs =
        Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));

    let engine = LiveEngine::start(model, runtime, Arc::new(DpScheduler), costs);
    println!("engine up; spawning 12 client threads with variable-length requests\n");

    let mut clients = Vec::new();
    for c in 0..12u32 {
        let client = engine.client();
        clients.push(std::thread::spawn(move || {
            let len = 4 + (c as usize * 5) % 30;
            let tokens: Vec<u32> = (0..len as u32).map(|i| (i * 7 + c) % 90).collect();
            let resp = client.infer(tokens);
            (c, len, resp)
        }));
    }

    println!(
        "{:>7} {:>7} {:>12} {:>12} {:>12}",
        "client", "len", "latency", "batch size", "padded len"
    );
    let mut results: Vec<_> = clients.into_iter().map(|h| h.join().expect("client")).collect();
    results.sort_by_key(|(c, _, _)| *c);
    for (c, len, resp) in results {
        println!(
            "{c:>7} {len:>7} {:>9.2} ms {:>12} {:>12}",
            resp.latency.as_secs_f64() * 1e3,
            resp.batch_size,
            resp.padded_len,
        );
    }

    let served = engine.shutdown();
    println!("\nengine drained and shut down after serving {served} requests.");
    println!("Similar lengths landed in shared batches (see the batch-size column) —");
    println!("the DP scheduler at work on a real queue.");
}
