//! Inspecting the sequence-length-aware memory allocator — watch the
//! chunked planner (paper Algorithms 1 and 2) serve a stream of
//! variable-length BERT requests, and compare its footprint/traffic against
//! the GSOC planner and a PyTorch-style caching pool.
//!
//! Run with: `cargo run --release --example memory_inspector`

use turbotransformers::alloc::caching::CachingAllocator;
use turbotransformers::alloc::gsoc::GsocAllocator;
use turbotransformers::alloc::sim::replay;
use turbotransformers::alloc::{validate_plan, TurboAllocator};
use turbotransformers::graph::lifetime::activation_lifetimes;
use turbotransformers::model::bert::{graph_skeleton, BertConfig};

const MB: f64 = 1048576.0;

fn main() {
    let cfg = BertConfig::base();
    let mut turbo = TurboAllocator::default();
    let mut gsoc = GsocAllocator::new();
    let mut caching = CachingAllocator::new();

    println!("serving BERT-base requests of varying length; all sizes in MB\n");
    println!(
        "{:>5} {:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>9}",
        "len", "tensors", "turbo fp", "turbo new", "gsoc fp", "gsoc new", "pool fp"
    );

    for len in [64usize, 128, 384, 64, 500, 32, 256, 500, 16] {
        let bound = graph_skeleton(&cfg, 1, len, false);
        let (usages, _) = activation_lifetimes(&bound.graph);

        let plan = turbo.plan(&usages);
        validate_plan(&usages, &plan).expect("turbo plan is safe");
        let ts = turbo.last_stats();

        let _ = gsoc.plan(&usages);
        let gs = gsoc.last_stats();

        let rep = replay(&mut caching, &usages);

        println!(
            "{len:>5} {:>9} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>9.2}",
            usages.len(),
            ts.footprint as f64 / MB,
            ts.new_bytes as f64 / MB,
            gs.footprint as f64 / MB,
            gs.new_bytes as f64 / MB,
            rep.final_reserved as f64 / MB,
        );
    }

    println!("\nReading the columns:");
    println!("- turbo: footprint tracks the recent peak; repeats and shorter requests");
    println!("  allocate nothing (the chunk cache + graph-aware offset reuse);");
    println!("- GSOC: per-request-optimal footprint, but the exact-fit buffer is");
    println!("  reallocated whenever demand grows — steady allocation traffic;");
    println!("- caching pool: no graph knowledge, so the pool only ratchets upward.");
}
