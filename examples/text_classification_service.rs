//! A text-classification serving scenario — the paper's §6.2 workload in
//! miniature: a burst of variable-length chat messages hits a BERT service,
//! and we compare the sequence-length-aware DP batch scheduler against no
//! batching and naive whole-queue batching.
//!
//! Run with: `cargo run --release --example text_classification_service`

use turbotransformers::gpusim::device::DeviceKind;
use turbotransformers::model::bert::Bert;
use turbotransformers::model::bert::BertConfig;
use turbotransformers::model::ids_batch;
use turbotransformers::model::tokenizer::Tokenizer;
use turbotransformers::runtime::{RuntimeConfig, TurboRuntime};
use turbotransformers::serving::request::{LengthDist, WorkloadSpec};
use turbotransformers::serving::scheduler::{
    BatchScheduler, DpScheduler, NaiveBatchScheduler, NoBatchScheduler,
};
use turbotransformers::serving::simulator::{simulate, ServingConfig, Trigger};
use turbotransformers::serving::CachedCost;

fn main() {
    // 0. The text front of the service: a WordPiece tokenizer turns chat
    //    messages into the token ids the model consumes.
    let tokenizer = Tokenizer::new_synthetic(2000);
    let mut tiny_cfg = BertConfig::tiny();
    tiny_cfg.vocab_size = tokenizer.vocab_size();
    let clf = Bert::new_random(&tiny_cfg, 5);
    println!("tokenizer demo (classification head = argmax over the CLS vector):");
    for text in ["hello world", "can you take me there now", "what about this one"] {
        let ids = tokenizer.encode(text, tiny_cfg.max_position);
        let out = clf.forward(&ids_batch(&[&ids]), None);
        let cls = &out.as_slice()[..tiny_cfg.model_dim()];
        let label = if cls.iter().sum::<f32>() >= 0.0 { "positive" } else { "negative" };
        println!("  {:<32} -> {:>2} tokens, class {label}", format!("{text:?}"), ids.len());
    }
    println!();
    // 1. Profile the service once (the paper's warm-up phase): BERT-base
    //    batch costs over the (length, batch) grid, on a simulated RTX 2060.
    println!("warming up the cached_cost table (BERT-base, batch ≤ 20, len ≤ 500)…");
    let runtime = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
    let costs = CachedCost::warm_up(&runtime, &BertConfig::base(), 500, 20, 10);

    // 2. A chitchat-like workload: Poisson arrivals at 120 req/s for 20 s,
    //    message lengths normally distributed, clamped to [5, 500].
    let workload = WorkloadSpec {
        rate_per_sec: 120.0,
        duration: 20.0,
        lengths: LengthDist::ClampedNormal { mean: 150.0, std: 120.0, lo: 5, hi: 500 },
        seed: 7,
    }
    .generate();
    println!("{} requests generated\n", workload.len());

    // 3. Serve the same trace under each scheduler.
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12}  saturated",
        "scheduler", "resp/s", "avg ms", "p99 ms", "max ms"
    );
    for scheduler in [&DpScheduler as &dyn BatchScheduler, &NaiveBatchScheduler, &NoBatchScheduler]
    {
        let report = simulate(
            &workload,
            &costs,
            &ServingConfig {
                scheduler,
                trigger: Trigger::Hungry,
                pad_to_max: false,
                cache_capacity: None,
            },
            20.0,
        );
        println!(
            "{:<20} {:>12.1} {:>12.2} {:>12.2} {:>12.2}  {}",
            report.scheduler,
            report.response_throughput,
            report.latency.mean() * 1e3,
            report.latency.percentile(99.0) * 1e3,
            report.latency.max() * 1e3,
            if report.saturated { "yes" } else { "no" },
        );
    }

    println!("\nThe DP scheduler groups similar lengths so long requests don't force");
    println!("padding onto short ones — highest throughput and lowest tail latency.");
}
