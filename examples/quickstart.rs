//! Quickstart: run BERT inference through the TurboTransformers runtime.
//!
//! The original library's pitch is "3 lines of Python to accelerate your
//! PyTorch BERT"; the Rust equivalent is: build a model, build a runtime,
//! call `run_bert` — variable-length inputs need no retuning, and every
//! inference reports its simulated GPU time and memory-plan statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use turbotransformers::prelude::*;

fn main() {
    // A small BERT (2 layers, hidden 16) so the example runs instantly;
    // swap in `BertConfig::base()` for the real 12-layer model.
    let config = BertConfig::tiny();
    let model = Bert::new_random(&config, 0xC0FFEE);

    // The TurboTransformers runtime on a simulated RTX 2060.
    let runtime = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));

    println!("BERT ({} layers, hidden {})\n", config.num_layers, config.model_dim());

    // Variable-length requests, one after another — the workload shape the
    // paper's runtime is designed for. No shape pretuning ever happens.
    // (Token ids are within the tiny config's 97-word vocabulary.)
    for tokens in [
        vec![90u32, 45, 23, 91],                             // short greeting
        vec![90, 12, 7, 33, 64, 58, 91],                     // a longer sentence
        (0..40).map(|i| (i * 2) % 96).collect::<Vec<u32>>(), // a paragraph
    ] {
        let ids = ids_batch(&[&tokens]);
        let run = runtime.run_bert(&model, &ids).expect("within model limits");
        println!(
            "len {:>2}: output {:?}, simulated GPU time {:.3} ms, \
             plan footprint {} KB (new allocations: {} bytes)",
            tokens.len(),
            run.encoder_output.shape().dims(),
            run.sim_time * 1e3,
            run.plan_stats.footprint / 1024,
            run.plan_stats.new_bytes,
        );
    }

    println!("\nNote how later requests allocate zero new bytes: the chunked");
    println!("sequence-length-aware allocator replans offsets inside cached chunks.");
}
