//! Machine-translation decoding — the paper's third workload (Table 3:
//! a 6-layer, 16-head Seq2Seq decoder, beam size 4, Chinese→English).
//!
//! Runs real beam-search decoding with KV caches on a small decoder, then
//! prices the paper-sized decoder on the simulated GPU, comparing the Turbo
//! runtime against the PyTorch-like baseline (paper Fig. 10c).
//!
//! Run with: `cargo run --release --example translation_decoder`

use turbotransformers::gpusim::device::DeviceKind;
use turbotransformers::model::decoder::{Seq2SeqDecoder, Seq2SeqDecoderConfig};
use turbotransformers::model::weights::WeightInit;
use turbotransformers::runtime::{RuntimeConfig, RuntimeKind, TurboRuntime};

fn main() {
    // --- Part 1: real beam-search decoding on a small decoder ---
    let config = Seq2SeqDecoderConfig {
        num_layers: 2,
        num_heads: 4,
        head_dim: 8,
        ffn_dim: 64,
        vocab_size: 64,
        max_target_len: 24,
        beam_size: 4,
        layer_norm_eps: 1e-6,
    };
    let decoder = Seq2SeqDecoder::new_random(&config, 99);

    // A stand-in encoder memory for a 12-token source sentence (in a full
    // pipeline this comes from a transformer encoder).
    let src_len = 12;
    let encoder_output = WeightInit::new(5)
        .embedding(src_len, config.model_dim())
        .reshape([src_len, config.model_dim()])
        .expect("matching element count");

    const BOS: u32 = 1;
    const EOS: u32 = 2;
    let hyp = decoder.beam_search(&encoder_output, BOS, EOS, 16);
    println!("beam search (beam {}) over a {src_len}-token source:", config.beam_size);
    println!("  tokens: {:?}", hyp.tokens);
    println!("  log-probability: {:.3}\n", hyp.score);

    // --- Part 2: paper-sized decoding latency on the simulated GPU ---
    let paper_cfg = Seq2SeqDecoderConfig::base();
    let turbo = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
    let pytorch =
        TurboRuntime::new(RuntimeConfig::new(RuntimeKind::PyTorchLike, DeviceKind::RTX2060));

    println!("paper-sized decoder (6 layers, model dim 1024, beam 4) on RTX 2060:");
    println!("{:>8} {:>8} {:>12} {:>12} {:>9}", "src", "tgt", "Turbo", "PyTorch", "speedup");
    for (src, tgt) in [(28usize, 34usize), (80, 96), (137, 164)] {
        let t = turbo.decoder_cost(&paper_cfg, src, tgt);
        let p = pytorch.decoder_cost(&paper_cfg, src, tgt);
        println!("{src:>8} {tgt:>8} {:>9.1} ms {:>9.1} ms {:>8.2}x", t * 1e3, p * 1e3, p / t);
    }
    println!("\n(paper Fig. 10c reports 1.85–2.51x over PyTorch on this workload)");
}
