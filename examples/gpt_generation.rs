//! GPT-style autoregressive generation — the decoder-only model family the
//! paper's introduction motivates, as an extension beyond its evaluation
//! set: greedy and top-k sampling with KV caches, plus generation-cost
//! pricing on the simulated GPU.
//!
//! Run with: `cargo run --release --example gpt_generation`

use turbotransformers::gpusim::device::DeviceKind;
use turbotransformers::prelude::{Gpt, GptConfig};
use turbotransformers::runtime::{RuntimeConfig, RuntimeKind, TurboRuntime};

fn main() {
    // --- Part 1: real generation on a small model ---
    let config = GptConfig {
        num_layers: 3,
        num_heads: 4,
        head_dim: 8,
        ffn_dim: 64,
        vocab_size: 100,
        max_position: 64,
        layer_norm_eps: 1e-5,
    };
    let model = Gpt::new_random(&config, 2021);
    let prompt = vec![10u32, 20, 30];

    let greedy = model.generate_greedy(&prompt, 12);
    println!("prompt {prompt:?}");
    println!("greedy continuation:   {greedy:?}");
    for seed in [1u64, 2] {
        let sampled = model.generate_top_k(&prompt, 12, 5, seed);
        println!("top-5 sample (seed {seed}): {sampled:?}");
    }

    // --- Part 2: GPT-2-small generation cost on the simulated GPU ---
    let paper_cfg = GptConfig::small();
    let turbo = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
    let pytorch =
        TurboRuntime::new(RuntimeConfig::new(RuntimeKind::PyTorchLike, DeviceKind::RTX2060));
    println!("\nGPT-2 small (12 layers, hidden 768) on a simulated RTX 2060:");
    println!("{:>9} {:>6} {:>12} {:>12} {:>9}", "prompt", "gen", "Turbo", "PyTorch", "speedup");
    for (p, g) in [(16usize, 32usize), (64, 64), (128, 128)] {
        let t = turbo.gpt_cost(&paper_cfg, p, g);
        let py = pytorch.gpt_cost(&paper_cfg, p, g);
        println!("{p:>9} {g:>6} {:>9.1} ms {:>9.1} ms {:>8.2}x", t * 1e3, py * 1e3, py / t);
    }
    println!("\nAutoregressive decoding is launch/overhead-bound at batch 1 — fused");
    println!("kernels and a native generation loop pay off even more than for encoders.");
}
