//! Integration tests spanning the whole stack: models → graphs → fusion →
//! allocator → executor → runtime variants → cost model → serving.

use turbotransformers::gpusim::device::DeviceKind;
use turbotransformers::model::bert::{Bert, BertConfig};
use turbotransformers::model::{ids_batch, pad_batch};
use turbotransformers::runtime::{RuntimeConfig, RuntimeKind, TurboRuntime};
use turbotransformers::serving::request::{LengthDist, WorkloadSpec};
use turbotransformers::serving::scheduler::{
    BatchScheduler, DpScheduler, NaiveBatchScheduler, NoBatchScheduler,
};
use turbotransformers::serving::simulator::{simulate, ServingConfig, Trigger};
use turbotransformers::serving::CachedCost;

/// Numerics: the planned-arena graph executor, under every runtime variant
/// (fused and decomposed graphs alike), agrees with the eager oracle on a
/// padded, masked batch.
#[test]
fn every_variant_matches_eager_on_padded_batch() {
    let cfg = BertConfig::tiny();
    let model = Bert::new_random(&cfg, 404);
    let (ids, mask, _) = pad_batch(&[&[1, 2, 3], &[4, 5, 6, 7, 8, 9], &[10]]);
    let eager = model.forward(&ids, Some(&mask));

    for kind in RuntimeKind::all() {
        let rt = TurboRuntime::new(RuntimeConfig::new(kind, DeviceKind::RTX2060));
        let run = rt.run_bert_masked(&model, &ids, &mask).expect("lengths within limits");
        assert!(
            run.encoder_output.approx_eq(&eager, 1e-4),
            "{kind:?} diverged from eager (diff {})",
            run.encoder_output.max_abs_diff(&eager).unwrap()
        );
        assert!(run.sim_time > 0.0);
    }
}

/// Memory: a runtime serving a stream of variable-length requests reuses
/// its chunk cache — after the longest request, shorter ones allocate
/// nothing, and all outputs remain correct.
#[test]
fn chunk_cache_survives_a_variable_length_stream() {
    let cfg = BertConfig::tiny();
    let model = Bert::new_random(&cfg, 405);
    let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));

    let mut seen_longest = 0usize;
    for &len in &[12usize, 40, 8, 25, 40, 3, 39] {
        let row: Vec<u32> = (0..len as u32).map(|t| t % 90).collect();
        let ids = ids_batch(&[&row]);
        let eager = model.forward(&ids, None);
        let run = rt.run_bert(&model, &ids).expect("within limits");
        assert!(run.encoder_output.approx_eq(&eager, 1e-4), "len {len} wrong");
        if len <= seen_longest {
            assert_eq!(run.plan_stats.new_bytes, 0, "len {len} after {seen_longest} must reuse");
        }
        seen_longest = seen_longest.max(len);
    }
}

/// Cost-model coherence: the runtime ordering the paper reports holds on
/// the real BERT-base graph — Turbo < onnxruntime < PyTorch at a
/// representative length, and the gap over PyTorch grows with length.
#[test]
fn runtime_ordering_matches_paper() {
    let cfg = BertConfig::base();
    let cost = |kind: RuntimeKind, seq: usize| {
        TurboRuntime::new(RuntimeConfig::new(kind, DeviceKind::RTX2060))
            .bert_cost(&cfg, 1, seq, false)
    };
    let t = cost(RuntimeKind::Turbo, 200);
    let o = cost(RuntimeKind::OnnxRuntimeLike, 200);
    let p = cost(RuntimeKind::PyTorchLike, 200);
    assert!(t < o && o < p, "expected Turbo {t} < ORT {o} < PyTorch {p}");

    let sp_50 = cost(RuntimeKind::PyTorchLike, 50) / cost(RuntimeKind::Turbo, 50);
    let sp_500 = cost(RuntimeKind::PyTorchLike, 500) / cost(RuntimeKind::Turbo, 500);
    assert!(sp_500 > sp_50, "speedup must grow with length: {sp_50:.2} vs {sp_500:.2}");
}

/// Serving: with a real warmed cost table, the paper's Fig. 12 ordering
/// holds — DP sustains more than no batching, which sustains more than
/// naive batching, under a high-variance workload.
#[test]
fn serving_ordering_with_real_cost_table() {
    let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
    // A modest table (len ≤ 256, batch ≤ 8) keeps the test fast.
    let costs = CachedCost::warm_up(&rt, &BertConfig::base(), 256, 8, 32);
    let workload = WorkloadSpec {
        rate_per_sec: 300.0,
        duration: 10.0,
        lengths: LengthDist::Uniform { lo: 5, hi: 256 },
        seed: 3,
    }
    .generate();

    let throughput = |sched: &dyn BatchScheduler| {
        simulate(
            &workload,
            &costs,
            &ServingConfig {
                scheduler: sched,
                trigger: Trigger::Hungry,
                pad_to_max: false,
                cache_capacity: None,
            },
            10.0,
        )
        .response_throughput
    };
    let dp = throughput(&DpScheduler);
    let none = throughput(&NoBatchScheduler);
    let naive = throughput(&NaiveBatchScheduler);
    assert!(dp >= none, "DP {dp} must not lose to NoBatch {none}");
    assert!(none > naive, "NoBatch {none} must beat Naive {naive} under high variance");
}

/// The whole pipeline is deterministic end to end: same seeds, same
/// outputs, same simulated times, same serving reports.
#[test]
fn end_to_end_determinism() {
    let run_once = || {
        let cfg = BertConfig::tiny();
        let model = Bert::new_random(&cfg, 7);
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::V100));
        let ids = ids_batch(&[&[5, 6, 7, 8, 9]]);
        let run = rt.run_bert(&model, &ids).unwrap();
        (run.encoder_output, run.sim_time)
    };
    let (out1, t1) = run_once();
    let (out2, t2) = run_once();
    assert_eq!(out1, out2);
    assert_eq!(t1, t2);
}
