//! Cross-crate property tests: invariants that tie the subsystems together
//! under randomized inputs.

use proptest::prelude::*;

use turbotransformers::alloc::{validate_plan, TurboAllocator};
use turbotransformers::graph::lifetime::activation_lifetimes;
use turbotransformers::model::bert::{graph_skeleton, BertConfig};
use turbotransformers::serving::request::Request;
use turbotransformers::serving::scheduler::{
    batching_cost, brute_force_contiguous, BatchScheduler, DpScheduler, NaiveBatchScheduler,
    NoBatchScheduler,
};
use turbotransformers::serving::CachedCost;

/// A structured batch-cost surface: positive launch overhead + padded-token
/// work with a sublinear batch discount.
fn cost_table(overhead_us: u64, per_token_ns: u64) -> CachedCost {
    CachedCost::from_fn(512, 8, 8, move |len, b| {
        overhead_us as f64 * 1e-6 + per_token_ns as f64 * 1e-9 * (len * b) as f64
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DP scheduler is optimal over contiguous sorted partitions for
    /// ANY queue and any monotone cost surface.
    #[test]
    fn dp_is_optimal_for_random_queues(
        lens in prop::collection::vec(1usize..=512, 1..10),
        overhead_us in 1u64..5000,
        per_token_ns in 1u64..20_000,
    ) {
        let queue: Vec<Request> =
            lens.iter().enumerate().map(|(i, &l)| Request::new(i, l, 0.0)).collect();
        let costs = cost_table(overhead_us, per_token_ns);
        let dp = batching_cost(&queue, &DpScheduler.schedule(&queue, &costs), &costs);
        let (best, _) = brute_force_contiguous(&queue, &costs);
        prop_assert!((dp - best).abs() < 1e-12, "DP {dp} vs brute force {best}");
    }

    /// …and therefore never loses to either baseline.
    #[test]
    fn dp_dominates_baselines(
        lens in prop::collection::vec(1usize..=512, 1..24),
        overhead_us in 1u64..5000,
        per_token_ns in 1u64..20_000,
    ) {
        let queue: Vec<Request> =
            lens.iter().enumerate().map(|(i, &l)| Request::new(i, l, 0.0)).collect();
        let costs = cost_table(overhead_us, per_token_ns);
        let dp = batching_cost(&queue, &DpScheduler.schedule(&queue, &costs), &costs);
        for sched in [&NaiveBatchScheduler as &dyn BatchScheduler, &NoBatchScheduler] {
            let c = batching_cost(&queue, &sched.schedule(&queue, &costs), &costs);
            prop_assert!(dp <= c + 1e-12, "DP {dp} lost to {} {c}", sched.name());
        }
    }

    /// Replanning real BERT graphs of random lengths over a persistent
    /// chunk cache always yields safe plans (simultaneously-live tensors
    /// never share bytes), across the whole request stream.
    #[test]
    fn bert_plans_stay_safe_across_random_streams(
        lens in prop::collection::vec(1usize..=64, 1..6),
    ) {
        let cfg = BertConfig::tiny();
        let mut alloc = TurboAllocator::default();
        for len in lens {
            let bound = graph_skeleton(&cfg, 1, len, false);
            let (usages, _) = activation_lifetimes(&bound.graph);
            let plan = alloc.plan(&usages);
            prop_assert!(validate_plan(&usages, &plan).is_ok(), "unsafe plan at len {len}");
        }
    }
}
